"""LTE - the Lightweight Trajectory Embedding model (paper Section IV-B).

Architecture (Figure 3):

* **Embedding model**: grid-cell embeddings of the observed points plus
  time-index features go through a GRU (Eq. 5-6); the final state is the
  trajectory embedding ``h``.
* **ST-blocks**: the :class:`~repro.core.st_block.LightweightSTOperator`
  decodes the complete trajectory step by step, predicting the road
  segment and moving ratio of every point (Eq. 7-9) under the
  constraint mask (Eq. 10-11).

The model is used as both the *student* (local model) and the *teacher*
(meta-learner) in the meta-knowledge training scheme (Section IV-C).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.dataset import Batch
from ..nn.tensor import Tensor
from ..serving.engine import DecodeSession
from ..serving.programs import STDecodeProgram
from .base import ModelOutput, RecoveryModel, RecoveryModelConfig
from .mask import SparseConstraintMask
from .st_block import LightweightSTOperator

__all__ = ["LTEConfig", "LTEModel"]

# The LTE model shares the generic recovery-model hyper-parameters.
LTEConfig = RecoveryModelConfig


class LTEModel(RecoveryModel):
    """The LightTR local model: GRU encoder + lightweight ST-operator."""

    #: number of auxiliary features fed to each decode step
    EXTRA_INPUTS = 4

    #: Both fused decode paths consume CSR constraint masks natively
    #: (the per-step reference path densifies them on entry).
    supports_sparse_mask = True

    def __init__(self, config: RecoveryModelConfig, rng: np.random.Generator):
        super().__init__(config)
        self.cell_embedding = nn.Embedding(config.num_cells, config.cell_emb_dim, rng)
        self.cell_embedding.decode_side = False  # encoder-side (flops walk)
        self.embed_dropout = nn.Dropout(config.dropout, rng) if config.dropout else None
        encoder_cls = {"gru": nn.GRU, "lstm": nn.LSTM, "rnn": nn.RNN}[config.encoder]
        self.encoder = encoder_cls(config.cell_emb_dim + 2, config.hidden_size, rng)
        self.st_operator = LightweightSTOperator(
            num_segments=config.num_segments,
            seg_emb_dim=config.seg_emb_dim,
            hidden_size=config.hidden_size,
            rng=rng,
            extra_inputs=self.EXTRA_INPUTS,
            num_blocks=config.num_st_blocks,
        )

    def encode(self, batch: Batch) -> Tensor:
        """Embed the observed (incomplete) trajectory into ``(B, H)``."""
        emb = self.cell_embedding(batch.obs_cells)  # (B, To, E)
        if self.embed_dropout is not None:
            emb = self.embed_dropout(emb)
        x = nn.concat([emb, nn.Tensor(batch.obs_feats)], axis=-1)
        _, h = self.encoder(x, mask=batch.obs_mask)
        return h

    def forward(self, batch: Batch, log_mask: np.ndarray,
                teacher_forcing: bool = True) -> ModelOutput:
        """Recover the complete trajectory.

        Parameters
        ----------
        batch:
            Padded mini-batch.
        log_mask:
            Constraint-mask log weights ``(B, T, S)`` from
            :class:`~repro.core.mask.ConstraintMaskBuilder` — either the
            dense array of :meth:`~ConstraintMaskBuilder.build` or the
            CSR :class:`~repro.core.mask.SparseConstraintMask` of
            :meth:`~ConstraintMaskBuilder.build_sparse`; the fused
            decode paths then restrict the masked log-softmax to each
            row's active segments.
        teacher_forcing:
            During training, feed ground-truth previous points into each
            step; at inference, feed the model's own predictions (with
            observed points clamped to their known values - they are
            inputs, not predictions).

        The fused hot paths (whole-sequence decode under teacher
        forcing; tape-free autoregressive decode under ``no_grad``) are
        taken by default; disabling fusion falls back to the per-step
        reference loop.
        """
        self._validate_mask(log_mask, batch, self.config.num_segments)
        h = self.encode(batch)
        extras = self._step_extras(batch)

        if nn.fused_kernels_enabled():
            if teacher_forcing:
                return self._forward_teacher_forced_fused(batch, log_mask, h,
                                                          extras)
            if not nn.is_grad_enabled():
                return self._forward_inference_fused(batch, log_mask, h, extras)
        if isinstance(log_mask, SparseConstraintMask):
            # The per-step reference loop indexes the mask densely.
            log_mask = log_mask.to_dense()
        return self._forward_stepwise(batch, log_mask, h, extras,
                                      teacher_forcing)

    def _forward_teacher_forced_fused(self, batch: Batch, log_mask: np.ndarray,
                                      h: Tensor, extras: np.ndarray
                                      ) -> ModelOutput:
        """Whole-sequence decode: ground-truth inputs are known up front."""
        # Step t consumes the ground truth of step t-1 (step 0 is observed).
        prev_segments = np.concatenate(
            [batch.tgt_segments[:, :1], batch.tgt_segments[:, :-1]], axis=1
        )
        prev_ratios = np.concatenate(
            [batch.tgt_ratios[:, :1], batch.tgt_ratios[:, :-1]], axis=1
        )
        log_probs, ratios, segments = self.st_operator.forward_teacher_forced(
            self.st_operator.initial_states(h), prev_segments, prev_ratios,
            extras, log_mask,
        )
        return ModelOutput(log_probs=log_probs, ratios=ratios, segments=segments)

    def decode_program(self, batch: Batch, log_mask) -> STDecodeProgram | None:
        """The serving engine's adapter over the ST-operator step kernels.

        Consumes dense or CSR-sparse constraint masks natively.  The
        per-step reference path (fusion disabled) has no program — the
        serving layer then falls back to the padded tape decode.
        """
        if not nn.fused_kernels_enabled():
            return None
        self._validate_mask(log_mask, batch, self.config.num_segments)
        h = self.encode(batch)
        return STDecodeProgram(self.st_operator, h.data,
                               self._step_extras(batch), log_mask)

    def _forward_inference_fused(self, batch: Batch, log_mask: np.ndarray,
                                 h: Tensor, extras: np.ndarray) -> ModelOutput:
        """Tape-free autoregressive decode (predictions feed back).

        One :class:`~repro.serving.DecodeSession` run over the full
        padded horizon — the same engine the serving layer drives with
        ragged lengths, here with no compaction so the output covers
        every ``(B, T)`` position like the tape paths do.
        """
        program = STDecodeProgram(self.st_operator, h.data, extras, log_mask)
        result = DecodeSession().run(program, batch)
        return ModelOutput(log_probs=nn.Tensor(result.log_probs),
                           ratios=nn.Tensor(result.ratios),
                           segments=result.segments)

    def _forward_stepwise(self, batch: Batch, log_mask: np.ndarray, h: Tensor,
                          extras: np.ndarray, teacher_forcing: bool
                          ) -> ModelOutput:
        """Reference per-step decode driving :meth:`LightweightSTOperator.step`."""
        b, t = batch.tgt_segments.shape
        states = self.st_operator.initial_states(h)
        prev_segments = batch.tgt_segments[:, 0].copy()  # index 0 is observed
        prev_ratios: Tensor = nn.Tensor(batch.tgt_ratios[:, 0].copy())

        step_logs: list[Tensor] = []
        step_ratios: list[Tensor] = []
        step_segments: list[np.ndarray] = []
        for step in range(t):
            states, out = self.st_operator.step(
                states, prev_segments, prev_ratios, extras[:, step],
                log_mask[:, step, :]
            )
            step_logs.append(out.log_probs)
            step_ratios.append(out.ratios)
            step_segments.append(out.segments)

            if teacher_forcing:
                prev_segments = batch.tgt_segments[:, step]
                prev_ratios = nn.Tensor(batch.tgt_ratios[:, step])
            else:
                observed = batch.observed_flags[:, step]
                prev_segments = np.where(observed, batch.tgt_segments[:, step],
                                         out.segments)
                clamped = np.where(observed, batch.tgt_ratios[:, step],
                                   np.clip(out.ratios.data, 0.0, 1.0))
                prev_ratios = nn.Tensor(clamped)

        return ModelOutput(
            log_probs=nn.stack(step_logs, axis=1),
            ratios=nn.stack(step_ratios, axis=1),
            segments=np.stack(step_segments, axis=1),
        )
