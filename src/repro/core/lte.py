"""LTE - the Lightweight Trajectory Embedding model (paper Section IV-B).

Architecture (Figure 3):

* **Embedding model**: grid-cell embeddings of the observed points plus
  time-index features go through a GRU (Eq. 5-6); the final state is the
  trajectory embedding ``h``.
* **ST-blocks**: the :class:`~repro.core.st_block.LightweightSTOperator`
  decodes the complete trajectory step by step, predicting the road
  segment and moving ratio of every point (Eq. 7-9) under the
  constraint mask (Eq. 10-11).

The model is used as both the *student* (local model) and the *teacher*
(meta-learner) in the meta-knowledge training scheme (Section IV-C).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.dataset import Batch
from ..nn.tensor import Tensor
from .base import ModelOutput, RecoveryModel, RecoveryModelConfig
from .st_block import LightweightSTOperator

__all__ = ["LTEConfig", "LTEModel"]

# The LTE model shares the generic recovery-model hyper-parameters.
LTEConfig = RecoveryModelConfig


class LTEModel(RecoveryModel):
    """The LightTR local model: GRU encoder + lightweight ST-operator."""

    #: number of auxiliary features fed to each decode step
    EXTRA_INPUTS = 4

    def __init__(self, config: RecoveryModelConfig, rng: np.random.Generator):
        super().__init__(config)
        self.cell_embedding = nn.Embedding(config.num_cells, config.cell_emb_dim, rng)
        self.embed_dropout = nn.Dropout(config.dropout, rng) if config.dropout else None
        encoder_cls = {"gru": nn.GRU, "lstm": nn.LSTM, "rnn": nn.RNN}[config.encoder]
        self.encoder = encoder_cls(config.cell_emb_dim + 2, config.hidden_size, rng)
        self.st_operator = LightweightSTOperator(
            num_segments=config.num_segments,
            seg_emb_dim=config.seg_emb_dim,
            hidden_size=config.hidden_size,
            rng=rng,
            extra_inputs=self.EXTRA_INPUTS,
            num_blocks=config.num_st_blocks,
        )

    def encode(self, batch: Batch) -> Tensor:
        """Embed the observed (incomplete) trajectory into ``(B, H)``."""
        emb = self.cell_embedding(batch.obs_cells)  # (B, To, E)
        if self.embed_dropout is not None:
            emb = self.embed_dropout(emb)
        x = nn.concat([emb, nn.Tensor(batch.obs_feats)], axis=-1)
        _, h = self.encoder(x, mask=batch.obs_mask)
        return h

    def forward(self, batch: Batch, log_mask: np.ndarray,
                teacher_forcing: bool = True) -> ModelOutput:
        """Recover the complete trajectory.

        Parameters
        ----------
        batch:
            Padded mini-batch.
        log_mask:
            Constraint-mask log weights ``(B, T, S)`` from
            :class:`~repro.core.mask.ConstraintMaskBuilder`.
        teacher_forcing:
            During training, feed ground-truth previous points into each
            step; at inference, feed the model's own predictions (with
            observed points clamped to their known values - they are
            inputs, not predictions).
        """
        self._validate_mask(log_mask, batch, self.config.num_segments)
        b, t = batch.tgt_segments.shape
        h = self.encode(batch)
        states = self.st_operator.initial_states(h)

        guide = self._normalise_guides(batch.guide_xy)
        prev_segments = batch.tgt_segments[:, 0].copy()  # index 0 is observed
        prev_ratios: Tensor = nn.Tensor(batch.tgt_ratios[:, 0].copy())

        step_logs: list[Tensor] = []
        step_ratios: list[Tensor] = []
        step_segments: list[np.ndarray] = []
        denominator = max(1, t - 1)
        for step in range(t):
            extras = np.concatenate(
                [
                    np.full((b, 1), step / denominator),
                    guide[:, step, :],
                    batch.observed_flags[:, step : step + 1].astype(np.float64),
                ],
                axis=1,
            )
            states, out = self.st_operator.step(
                states, prev_segments, prev_ratios, extras, log_mask[:, step, :]
            )
            step_logs.append(out.log_probs)
            step_ratios.append(out.ratios)
            step_segments.append(out.segments)

            if teacher_forcing:
                prev_segments = batch.tgt_segments[:, step]
                prev_ratios = nn.Tensor(batch.tgt_ratios[:, step])
            else:
                observed = batch.observed_flags[:, step]
                prev_segments = np.where(observed, batch.tgt_segments[:, step],
                                         out.segments)
                clamped = np.where(observed, batch.tgt_ratios[:, step],
                                   np.clip(out.ratios.data, 0.0, 1.0))
                prev_ratios = nn.Tensor(clamped)

        return ModelOutput(
            log_probs=nn.stack(step_logs, axis=1),
            ratios=nn.stack(step_ratios, axis=1),
            segments=np.stack(step_segments, axis=1),
        )
