"""Teacher (meta-learner) training - paper Algorithm 1.

Before federated training starts, a single teacher model is trained
*cyclically* across clients: it visits each client in turn, trains on a
subset of that client's local data, and a validation-accuracy threshold
``lt`` decides whether the update is kept.  Knowledge that transfers
(accuracy stays above the threshold) is preserved; updates from clients
whose data would derail the accumulated common knowledge are rolled
back.  This sequential hand-off is how the teacher accumulates
*meta-knowledge* that smooths over Non-IID clients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..data.dataset import TrajectoryDataset
from .base import RecoveryModel
from .mask import ConstraintMaskBuilder
from .training import LocalTrainer, TrainingConfig

__all__ = ["TeacherConfig", "TeacherTrainingResult", "train_teacher"]


@dataclass(frozen=True)
class TeacherConfig:
    """Knobs of Algorithm 1."""

    lt: float = 0.4  # validation-accuracy threshold for keeping updates
    epochs_per_client: int = 2
    cycles: int = 1  # passes over the client ring
    subset_fraction: float = 0.5  # share of local data used for meta-knowledge
    training: TrainingConfig = TrainingConfig(epochs=2)

    def __post_init__(self):
        if not 0.0 <= self.lt <= 1.0:
            raise ValueError("lt must be in [0, 1]")
        if not 0.0 < self.subset_fraction <= 1.0:
            raise ValueError("subset_fraction must be in (0, 1]")
        if self.cycles < 1 or self.epochs_per_client < 1:
            raise ValueError("cycles and epochs_per_client must be >= 1")


@dataclass
class TeacherTrainingResult:
    """The trained teacher plus a log of the keep/rollback decisions."""

    teacher: RecoveryModel
    accepted: list[bool]
    accuracies: list[float]


def train_teacher(model_factory: Callable[[], RecoveryModel],
                  client_splits: list[tuple[TrajectoryDataset, TrajectoryDataset]],
                  mask_builder: ConstraintMaskBuilder,
                  config: TeacherConfig,
                  rng: np.random.Generator) -> TeacherTrainingResult:
    """Run Algorithm 1 and return the common teacher model.

    Parameters
    ----------
    model_factory:
        Zero-argument callable building a fresh recovery model (the
        teacher shares the LTE architecture with the students).
    client_splits:
        Per-client ``(train, valid)`` dataset pairs, in ring order.
    mask_builder:
        Shared constraint-mask builder.
    config:
        Algorithm 1 parameters (threshold ``lt``, cycle count, local
        epochs, subset fraction).
    rng:
        Randomness source for subset selection and batch shuffling.
    """
    if not client_splits:
        raise ValueError("teacher training needs at least one client")
    teacher = model_factory()
    trainer = LocalTrainer(teacher, mask_builder, config.training, rng)

    accepted: list[bool] = []
    accuracies: list[float] = []
    for _ in range(config.cycles):
        for train_set, valid_set in client_splits:
            subset = _subset(train_set, config.subset_fraction, rng)
            snapshot = teacher.state_dict()
            trainer.train_epochs(subset, epochs=config.epochs_per_client)
            accuracy = trainer.segment_accuracy(valid_set)
            keep = accuracy >= config.lt
            if not keep:
                # The update degraded below the knowledge threshold:
                # roll back to the previously accumulated knowledge
                # (Algorithm 1 lines 5-10).
                teacher.load_state_dict(snapshot)
            accepted.append(keep)
            accuracies.append(accuracy)
    teacher.eval()
    return TeacherTrainingResult(teacher=teacher, accepted=accepted,
                                 accuracies=accuracies)


def _subset(dataset: TrajectoryDataset, fraction: float,
            rng: np.random.Generator) -> TrajectoryDataset:
    """A random fraction of a dataset (at least one example)."""
    if fraction >= 1.0:
        return dataset
    count = max(1, int(round(fraction * len(dataset))))
    picks = rng.choice(len(dataset), size=count, replace=False)
    return TrajectoryDataset([dataset[i] for i in picks], dataset.grid,
                             dataset.network, dataset.keep_ratio)
