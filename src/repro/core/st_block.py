"""The lightweight ST-operator (paper Section IV-B2, Eq. 7-9).

One ST-block = a single RNN layer whose cell output feeds a pure-MLP
multi-task (MT) head that predicts the road segment ``e_t`` (through a
dense layer + constraint mask, Eq. 11) and the moving ratio ``r_t``
(dense over the concatenation of the enriched hidden state and the
segment embedding, Eq. 8) simultaneously.  The predicted ``(e_t, r_t)``
are fed back as the next step's input (Eq. 9), so spatial decisions
propagate temporally without any attention or convolution - this is
what makes the operator "lightweight" (Table II's O(N(L+D)) row).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.backend import call_kernel, ops, register_kernel, workspace
from ..nn.tensor import Tensor

__all__ = ["LightweightSTOperator", "STStepOutput"]


class STStepOutput:
    """Outputs of one decoding step."""

    __slots__ = ("hidden", "log_probs", "segments", "ratios")

    def __init__(self, hidden: Tensor, log_probs: Tensor,
                 segments: np.ndarray, ratios: Tensor):
        self.hidden = hidden  # (B, H) next recurrent state
        self.log_probs = log_probs  # (B, S) masked log probabilities
        self.segments = segments  # (B,) argmax segment ids (int64)
        self.ratios = ratios  # (B,) predicted moving ratios


class LightweightSTOperator(nn.Module):
    """RNN + MLP multi-task head over the segment vocabulary.

    Parameters
    ----------
    num_segments:
        Size of the road-segment vocabulary (classifier width).
    seg_emb_dim:
        Dimension of the road-segment embedding (Eq. 8's Emb layer).
    hidden_size:
        Recurrent state width.
    extra_inputs:
        Width of additional per-step features (step fraction, guide
        position, observed flag) concatenated into the cell input.
    num_blocks:
        Number of stacked RNN cells (the paper stacks ST-blocks; the MT
        head reads the top cell's state).
    """

    def __init__(self, num_segments: int, seg_emb_dim: int, hidden_size: int,
                 rng: np.random.Generator, extra_inputs: int = 4,
                 num_blocks: int = 2):
        super().__init__()
        if num_blocks < 1:
            raise ValueError("need at least one ST-block")
        self.num_segments = num_segments
        self.hidden_size = hidden_size
        self.num_blocks = num_blocks

        step_input = seg_emb_dim + 1 + extra_inputs  # prev emb + prev ratio + extras
        self.seg_embedding = nn.Embedding(num_segments, seg_emb_dim, rng)
        cells = [nn.RNNCell(step_input, hidden_size, rng)]
        for _ in range(num_blocks - 1):
            cells.append(nn.RNNCell(hidden_size, hidden_size, rng))
        self.cells = nn.ModuleList(cells)

        # MT head (Eq. 8): Dense -> (mask) -> segment; Emb enrich -> ratio.
        self.dense_d = nn.Linear(hidden_size, hidden_size, rng)
        self.seg_head = nn.Linear(hidden_size, num_segments, rng, bias=False)
        self.emb_proj = nn.Linear(seg_emb_dim, hidden_size, rng)
        self.ratio_head = nn.Linear(hidden_size + seg_emb_dim, 1, rng)

    def step(self, hidden_states: list[Tensor], prev_segments: np.ndarray,
             prev_ratios: Tensor, extras: np.ndarray,
             log_mask_t: np.ndarray) -> tuple[list[Tensor], STStepOutput]:
        """Run one decoding step.

        Parameters
        ----------
        hidden_states:
            Per-block recurrent states, each ``(B, H)``.
        prev_segments:
            ``(B,)`` previous road segment ids (ground truth under
            teacher forcing; model predictions at inference).
        prev_ratios:
            ``(B,)`` previous moving ratios as a tensor.
        extras:
            ``(B, extra_inputs)`` auxiliary step features.
        log_mask_t:
            ``(B, S)`` constraint-mask log weights for this timestep.

        Returns
        -------
        (next_hidden_states, STStepOutput)
        """
        prev_emb = self.seg_embedding(prev_segments)  # (B, E)
        x = nn.concat(
            [prev_emb, prev_ratios.reshape(-1, 1), nn.Tensor(extras)], axis=-1
        )
        next_states: list[Tensor] = []
        for cell, h in zip(self.cells, hidden_states):
            x = cell(x, h)
            next_states.append(x)
        h_prime = x  # top block state (Eq. 7's h'_t)

        h_d = self.dense_d(h_prime)  # (B, H)
        logits = self.seg_head(h_d)  # (B, S)
        masked = logits + nn.Tensor(log_mask_t)  # Eq. 11 in log space
        log_probs = nn.log_softmax(masked, axis=-1)
        segments = ops.argmax(log_probs.data, axis=-1).astype(np.int64)

        seg_emb = self.seg_embedding(segments)  # (B, E), detached ids
        h_e = (h_d + self.emb_proj(seg_emb)).relu()  # Eq. 8 Emb step
        ratios = self.ratio_head(nn.concat([h_e, seg_emb], axis=-1)).relu()
        return next_states, STStepOutput(
            hidden=h_prime, log_probs=log_probs,
            segments=segments, ratios=ratios.reshape(-1),
        )

    def forward_teacher_forced(self, initial_states: list[Tensor],
                               prev_segments: np.ndarray,
                               prev_ratios: np.ndarray,
                               extras: np.ndarray,
                               log_mask: np.ndarray
                               ) -> tuple[Tensor, Tensor, np.ndarray]:
        """Fused decode of the whole sequence under teacher forcing.

        With teacher forcing the per-step inputs (previous ground-truth
        segment/ratio and the auxiliary features) are known up front, so
        the recurrence collapses to one fused RNN scan per block and the
        MT head applies to all ``(B, T)`` positions in a handful of
        batched ops — one embedding lookup, one masked log-softmax over
        ``(B, T, S)``, two dense layers — instead of ``T`` per-step
        closures.  Numerically equivalent to driving :meth:`step`.

        Parameters
        ----------
        initial_states:
            Per-block initial recurrent states, each ``(B, H)``.
        prev_segments:
            ``(B, T)`` previous ground-truth segment ids per step.
        prev_ratios:
            ``(B, T)`` previous ground-truth moving ratios per step.
        extras:
            ``(B, T, extra_inputs)`` auxiliary step features.
        log_mask:
            ``(B, T, S)`` constraint-mask log weights — dense array or
            :class:`~repro.core.mask.SparseConstraintMask` (the masked
            log-softmax then runs over active indices only).

        Returns
        -------
        (log_probs, ratios, segments):
            ``(B, T, S)`` masked log-probabilities, ``(B, T)`` predicted
            ratios, and ``(B, T)`` argmax segment ids.
        """
        batch, steps = prev_segments.shape
        prev_emb = self.seg_embedding(prev_segments)  # (B, T, E)
        x = nn.concat(
            [prev_emb, Tensor(prev_ratios[..., None]), Tensor(extras)], axis=-1
        )
        for cell, h0 in zip(self.cells, initial_states):
            x = cell.scan(x, h0)  # (B, T, H) fused BPTT node
        h_prime = x  # top block states (Eq. 7's h'_t for every t)

        h_d = self.dense_d(h_prime)  # (B, T, H)
        logits = self.seg_head(h_d)  # (B, T, S)
        log_probs = nn.masked_log_softmax(logits, log_mask)  # Eq. 11
        segments = ops.argmax(log_probs.data, axis=-1).astype(np.int64)

        seg_emb = self.seg_embedding(segments)  # (B, T, E), detached ids
        h_e = (h_d + self.emb_proj(seg_emb)).relu()  # Eq. 8 Emb step
        ratios = self.ratio_head(nn.concat([h_e, seg_emb], axis=-1)).relu()
        return log_probs, ratios.reshape(batch, steps), segments

    def step_advance(self, hidden_states: list[np.ndarray],
                     prev_segments: np.ndarray, prev_ratios: np.ndarray,
                     extras: np.ndarray, log_mask_t: np.ndarray
                     ) -> tuple[list[np.ndarray], np.ndarray, np.ndarray]:
        """Advance the recurrent state one step and score the vocabulary.

        The first half of a tape-free decode step (compacted-state step
        API): runs the stacked cells and the segment head over whatever
        subset of batch rows ``hidden_states`` holds, without choosing a
        segment — that is the emission policy's job
        (:mod:`repro.serving`).  ``log_mask_t`` is either a dense
        ``(B, S)`` array or a per-step ``(B, S)`` sparse mask (from
        :meth:`SparseConstraintMask.step`), in which case the masked
        log-softmax runs over active indices only.  Returns
        ``(next_states, h_d, log_probs)``; feed ``h_d`` and the chosen
        segments to :meth:`step_emit` for the moving ratios.
        """
        return call_kernel("st_decode_step", _st_decode_step_ref, self,
                           hidden_states, prev_segments, prev_ratios,
                           extras, log_mask_t)

    def step_emit(self, h_d: np.ndarray, segments: np.ndarray) -> np.ndarray:
        """Moving ratios for the chosen ``segments`` (second half of a
        tape-free decode step; Eq. 8's Emb enrichment on raw arrays).

        The single-output ratio head goes through
        :func:`repro.nn.row_dot` so its bits do not depend on how many
        rows the decode engine's working set currently holds.
        """
        emb_w = self.seg_embedding.weight.data
        seg_emb = emb_w[segments]
        h_e = ops.maximum(
            h_d + seg_emb @ self.emb_proj.weight.data + self.emb_proj.bias.data,
            0.0,
        )
        return ops.maximum(
            nn.row_dot(ops.concatenate([h_e, seg_emb], axis=1),
                       self.ratio_head.weight.data)
            + self.ratio_head.bias.data,
            0.0,
        )

    def initial_states(self, encoder_state: Tensor) -> list[Tensor]:
        """Per-block initial recurrent states seeded by the encoder."""
        return [encoder_state for _ in range(self.num_blocks)]


def _st_masked_log_probs(logits: np.ndarray, log_mask_t) -> np.ndarray:
    """Mask + log-softmax one decode step's logits (shared by both
    ``st_decode_step`` kernel variants — the output escapes, so it is
    always freshly allocated)."""
    if isinstance(log_mask_t, np.ndarray):
        # Raw mirror of the tape masked_log_softmax, including its
        # float64 normaliser accumulation (rounded back in place at
        # reduced compute dtypes), so packed decode reproduces the
        # tape path's bits at any precision.
        if log_mask_t.dtype != logits.dtype:
            log_mask_t = log_mask_t.astype(logits.dtype)
        masked = logits + log_mask_t
        shifted = masked - masked.max(axis=-1, keepdims=True)
        shifted -= ops.log(ops.exp(shifted).sum(axis=-1, keepdims=True,
                                                dtype=np.float64))
        return shifted
    return nn.sparse_masked_log_probs(logits, log_mask_t)


def _st_decode_step_ref(operator, hidden_states, prev_segments, prev_ratios,
                        extras, log_mask_t):
    """Kernel ``"st_decode_step"``: reference decode-step advance."""
    emb_w = operator.seg_embedding.weight.data
    x = ops.concatenate(
        [emb_w[prev_segments], prev_ratios[:, None], extras], axis=1
    )
    next_states: list[np.ndarray] = []
    for cell, h in zip(operator.cells, hidden_states):
        x = ops.tanh(x @ cell.w_x.data + h @ cell.w_h.data + cell.bias.data)
        next_states.append(x)

    h_d = x @ operator.dense_d.weight.data + operator.dense_d.bias.data
    logits = h_d @ operator.seg_head.weight.data
    if operator.seg_head.bias is not None:
        logits += operator.seg_head.bias.data
    return next_states, h_d, _st_masked_log_probs(logits, log_mask_t)


def _st_decode_step_ws(operator, hidden_states, prev_segments, prev_ratios,
                       extras, log_mask_t):
    """Workspace variant: matmul pre-activations and the logits land in
    pooled scratch (same ops, same order — bitwise identical); the
    arrays that escape (``next_states`` tanh outputs, ``h_d``, the log
    probabilities) stay freshly allocated."""
    emb_w = operator.seg_embedding.weight.data
    rows = prev_segments.shape[0]
    dtype = emb_w.dtype
    width = emb_w.shape[1] + 1 + extras.shape[1]
    x = ops.concatenate(
        [emb_w[prev_segments], prev_ratios[:, None], extras], axis=1,
        out=workspace.take((rows, width), dtype, "st.x"))
    next_states: list[np.ndarray] = []
    for cell, h in zip(operator.cells, hidden_states):
        hidden = cell.bias.data.shape[0]
        pre = ops.matmul(x, cell.w_x.data,
                         out=workspace.take((rows, hidden), dtype, "st.pre"))
        rec = ops.matmul(h, cell.w_h.data,
                         out=workspace.take((rows, hidden), dtype, "st.rec"))
        pre += rec
        pre += cell.bias.data
        x = ops.tanh(pre)  # escapes as the next recurrent state: fresh
        next_states.append(x)

    dense_w = operator.dense_d.weight.data
    pre_d = ops.matmul(x, dense_w,
                       out=workspace.take((rows, dense_w.shape[1]), dtype,
                                          "st.pre_d"))
    h_d = pre_d + operator.dense_d.bias.data  # escapes: fresh
    head_w = operator.seg_head.weight.data
    logits = ops.matmul(h_d, head_w,
                        out=workspace.take((rows, head_w.shape[1]), dtype,
                                           "st.logits"))
    if operator.seg_head.bias is not None:
        logits += operator.seg_head.bias.data
    return next_states, h_d, _st_masked_log_probs(logits, log_mask_t)


register_kernel("workspace", "st_decode_step", _st_decode_step_ws)
