"""``repro.core`` - the LightTR model and its training machinery."""

from .base import ModelOutput, RecoveryModel, RecoveryModelConfig
from .distill import MetaKnowledgeDistiller, dynamic_lambda
from .lte import LTEConfig, LTEModel
from .mask import GAMMA_DEFAULT, ConstraintMaskBuilder, SparseConstraintMask
from .recovery import RecoveredTrajectory, TrajectoryRecovery
from .st_block import LightweightSTOperator, STStepOutput
from .teacher import TeacherConfig, TeacherTrainingResult, train_teacher
from .training import (
    LocalTrainer,
    TrainingConfig,
    evaluate_output_accuracy,
    model_segment_accuracy,
)

__all__ = [
    "RecoveryModel", "RecoveryModelConfig", "ModelOutput",
    "LTEConfig", "LTEModel",
    "SparseConstraintMask",
    "LightweightSTOperator", "STStepOutput",
    "ConstraintMaskBuilder", "GAMMA_DEFAULT",
    "MetaKnowledgeDistiller", "dynamic_lambda",
    "TeacherConfig", "TeacherTrainingResult", "train_teacher",
    "TrainingConfig", "LocalTrainer", "model_segment_accuracy",
    "evaluate_output_accuracy",
    "TrajectoryRecovery", "RecoveredTrajectory",
]
