"""High-level trajectory recovery API.

:class:`TrajectoryRecovery` wraps a trained model and the constraint
mask and turns encoded datasets back into recovered
:class:`~repro.data.trajectory.MatchedTrajectory` objects - the
user-facing operation ``F(.)`` of the problem statement (Eq. 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..data.dataset import Batch, TrajectoryDataset
from ..data.trajectory import MatchedPoint, MatchedTrajectory
from ..serving import decode_model
from .base import RecoveryModel
from .mask import ConstraintMaskBuilder

__all__ = ["RecoveredTrajectory", "TrajectoryRecovery"]


@dataclass(frozen=True)
class RecoveredTrajectory:
    """A recovered trajectory together with its provenance."""

    trajectory: MatchedTrajectory
    traj_id: int
    recovered_indices: tuple[int, ...]  # which points the model produced


class TrajectoryRecovery:
    """Recover complete trajectories from incomplete ones with a model.

    Observed points are passed through unchanged (they are inputs);
    missing points take the model's predicted segment and clipped
    moving ratio.
    """

    def __init__(self, model: RecoveryModel, mask_builder: ConstraintMaskBuilder):
        self.model = model
        self.mask_builder = mask_builder

    def predict_batch(self, batch: Batch, decode_batch: int | None = None
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Predicted ``(segments, ratios)`` arrays of shape ``(B, T)``.

        Observed steps are clamped to their ground-truth (observed)
        values; ratios are clipped to [0, 1].  Inference runs through
        the packed decode engine (:mod:`repro.serving`) — each row is
        decoded only to its true length, stepped ``decode_batch``
        trajectories at a time (``None`` = all at once).
        """
        log_mask = self.mask_builder.build_for(batch, self.model)
        self.model.eval()
        with nn.no_grad():
            output = decode_model(self.model, batch, log_mask,
                                  decode_batch=decode_batch)
        segments = np.where(batch.observed_flags, batch.tgt_segments, output.segments)
        ratios = np.where(batch.observed_flags, batch.tgt_ratios,
                          np.clip(output.ratios.data, 0.0, 1.0))
        return segments.astype(np.int64), ratios

    def recover_dataset(self, dataset: TrajectoryDataset,
                        epsilon: float = 15.0,
                        decode_batch: int | None = None
                        ) -> list[RecoveredTrajectory]:
        """Recover every trajectory in ``dataset``.

        The whole dataset is collated once through the memoised
        :meth:`TrajectoryDataset.full_batch` path (repeated recovery
        passes — every round of a serving loop — never re-pad), and
        ``decode_batch`` bounds the packed decode working set inside
        that one batch.  Chunking the *decode* rather than the
        collation keeps the step-feature geometry (which depends on the
        batch's padded width) identical under any ``decode_batch``, so
        the knob trades memory, not results.
        """
        if len(dataset) == 0:
            return []
        batch = dataset.full_batch()
        segments, ratios = self.predict_batch(batch, decode_batch=decode_batch)
        results = []
        for i, example in enumerate(dataset.examples):
            n = example.full_length
            points = tuple(
                MatchedPoint(
                    segment_id=int(segments[i, j]),
                    ratio=float(ratios[i, j]),
                    t=j * epsilon,
                    tid=j,
                )
                for j in range(n)
            )
            recovered = MatchedTrajectory(
                traj_id=example.traj_id,
                driver_id=example.driver_id,
                epsilon=epsilon,
                points=points,
            )
            missing = tuple(int(j) for j in np.flatnonzero(~example.observed_flags))
            results.append(RecoveredTrajectory(
                trajectory=recovered, traj_id=example.traj_id,
                recovered_indices=missing,
            ))
        return results
