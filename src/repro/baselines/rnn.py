"""RNN+FL baseline: stacked vanilla RNNs (paper Section V-A3).

A plain Elman-RNN encoder over the observed points and a stacked RNN
decoder that predicts the segment and ratio of every step with simple
linear heads - no multi-task coupling, no segment-embedding feedback
enrichment, no GRU gating.  Cheap (the paper notes it is the fastest)
but markedly less accurate than LightTR.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..core.base import ModelOutput, RecoveryModel, RecoveryModelConfig
from ..data.dataset import Batch
from ..serving.programs import StackedRNNDecodeProgram

__all__ = ["RNNRecoveryModel"]


class RNNRecoveryModel(RecoveryModel):
    """Stacked-RNN recovery model."""

    def __init__(self, config: RecoveryModelConfig, rng: np.random.Generator):
        super().__init__(config)
        h = config.hidden_size
        self.cell_embedding = nn.Embedding(config.num_cells, config.cell_emb_dim, rng)
        self.cell_embedding.decode_side = False  # encoder-side (flops walk)
        self.encoder = nn.RNN(config.cell_emb_dim + 2, h, rng)
        self.seg_embedding = nn.Embedding(config.num_segments, config.seg_emb_dim, rng)
        step_input = config.seg_emb_dim + 1 + 4  # prev emb + prev ratio + extras
        cells = [nn.RNNCell(step_input, h, rng)]
        for _ in range(max(0, config.num_st_blocks - 1)):
            cells.append(nn.RNNCell(h, h, rng))
        self.cells = nn.ModuleList(cells)
        self.seg_head = nn.Linear(h, config.num_segments, rng, bias=False)
        self.ratio_head = nn.Linear(h, 1, rng)

    def decode_program(self, batch: Batch, log_mask) -> StackedRNNDecodeProgram:
        """Serving-engine adapter: stacked-cell decode on raw arrays."""
        self._validate_mask(log_mask, batch, self.config.num_segments)
        _, h = self._encode(batch)
        return StackedRNNDecodeProgram(
            self.seg_embedding.weight.data, self.cells, self.seg_head,
            self.ratio_head, h.data, self._step_extras(batch), log_mask,
        )

    def _encode(self, batch: Batch):
        emb = self.cell_embedding(batch.obs_cells)
        x = nn.concat([emb, nn.Tensor(batch.obs_feats)], axis=-1)
        return self.encoder(x, mask=batch.obs_mask)

    def forward(self, batch: Batch, log_mask: np.ndarray,
                teacher_forcing: bool = True) -> ModelOutput:
        if not teacher_forcing:
            # Inference rides the shared decode engine (tape-free); the
            # per-step loop below is the reference it is tested against.
            packed = self._packed_inference(batch, log_mask)
            if packed is not None:
                return packed
        self._validate_mask(log_mask, batch, self.config.num_segments)
        b, t = batch.tgt_segments.shape

        _, h = self._encode(batch)
        states = [h for _ in range(len(self.cells))]

        # Step fraction + guide + observed flag for every step at once,
        # in the compute dtype (bitwise equal to the per-step build).
        extras_all = self._step_extras(batch)
        prev_segments = batch.tgt_segments[:, 0].copy()
        prev_ratios = nn.Tensor(batch.tgt_ratios[:, 0].copy())

        step_logs, step_ratios, step_segments = [], [], []
        for step in range(t):
            extras = extras_all[:, step]
            z = nn.concat(
                [self.seg_embedding(prev_segments), prev_ratios.reshape(-1, 1),
                 nn.Tensor(extras)],
                axis=-1,
            )
            next_states = []
            for cell, state in zip(self.cells, states):
                z = cell(z, state)
                next_states.append(z)
            states = next_states

            logits = self.seg_head(z) + nn.Tensor(log_mask[:, step, :])
            log_probs = nn.log_softmax(logits, axis=-1)
            ratios = self.ratio_head(z).relu().reshape(-1)
            segments = np.argmax(log_probs.data, axis=-1).astype(np.int64)
            step_logs.append(log_probs)
            step_ratios.append(ratios)
            step_segments.append(segments)

            if teacher_forcing:
                prev_segments = batch.tgt_segments[:, step]
                prev_ratios = nn.Tensor(batch.tgt_ratios[:, step])
            else:
                observed = batch.observed_flags[:, step]
                prev_segments = np.where(observed, batch.tgt_segments[:, step], segments)
                prev_ratios = nn.Tensor(
                    np.where(observed, batch.tgt_ratios[:, step],
                             np.clip(ratios.data, 0.0, 1.0))
                )

        return ModelOutput(
            log_probs=nn.stack(step_logs, axis=1),
            ratios=nn.stack(step_ratios, axis=1),
            segments=np.stack(step_segments, axis=1),
        )
