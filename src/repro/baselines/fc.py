"""FC+FL baseline: stacked fully-connected layers (paper Section V-A3).

The weakest baseline: the observed trajectory is mean-pooled through an
embedding + MLP (no recurrence at all), and each missing point is
predicted independently from the pooled context and per-step features.
The paper finds it far behind every RNN-based method because it cannot
model temporal dependencies - reproducing that gap validates the whole
pipeline.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..core.base import ModelOutput, RecoveryModel, RecoveryModelConfig
from ..data.dataset import Batch

__all__ = ["FCRecoveryModel"]


class FCRecoveryModel(RecoveryModel):
    """Stacked-FC recovery model (no temporal modelling)."""

    def __init__(self, config: RecoveryModelConfig, rng: np.random.Generator,
                 num_layers: int = 3):
        super().__init__(config)
        if num_layers < 1:
            raise ValueError("need at least one FC layer")
        self.cell_embedding = nn.Embedding(config.num_cells, config.cell_emb_dim, rng)
        self.cell_embedding.decode_side = False  # encoder-side (flops walk)
        h = config.hidden_size
        dims = [config.cell_emb_dim + 2] + [h] * num_layers
        self.pool_mlp = nn.MLP(dims, rng, activate_last=True)
        self.pool_mlp.decode_side = False  # pooled once per sequence
        # Per-step head: pooled context + [step_frac, guide_x, guide_y].
        self.step_mlp = nn.MLP([h + 3, h, h], rng, activate_last=True)
        self.seg_head = nn.Linear(h, config.num_segments, rng, bias=False)
        self.ratio_head = nn.Linear(h, 1, rng)

    def forward(self, batch: Batch, log_mask: np.ndarray,
                teacher_forcing: bool = True) -> ModelOutput:
        """Predict every step independently from pooled context."""
        self._validate_mask(log_mask, batch, self.config.num_segments)
        b, t = batch.tgt_segments.shape

        emb = self.cell_embedding(batch.obs_cells)  # (B, To, E)
        x = nn.concat([emb, nn.Tensor(batch.obs_feats)], axis=-1)
        feats = self.pool_mlp(x)  # (B, To, H)
        # Masked mean pool over observed points.
        weights = batch.obs_mask.astype(nn.get_compute_dtype())
        denom = np.maximum(weights.sum(axis=1, keepdims=True), 1.0)
        pooled = (feats * nn.Tensor(weights[:, :, None])).sum(axis=1) * nn.Tensor(1.0 / denom)

        # FC consumes only the [fraction, guide] columns of the shared
        # step extras (no observed flag, no autoregression) — slice the
        # dtype-routed build instead of re-deriving float64 columns.
        extras_all = self._step_extras(batch)[:, :, :3]
        step_logs, step_ratios, step_segments = [], [], []
        for step in range(t):
            z = self.step_mlp(nn.concat([pooled, nn.Tensor(extras_all[:, step])],
                                        axis=-1))
            logits = self.seg_head(z) + nn.Tensor(log_mask[:, step, :])
            log_probs = nn.log_softmax(logits, axis=-1)
            ratios = self.ratio_head(z).relu().reshape(-1)
            step_logs.append(log_probs)
            step_ratios.append(ratios)
            step_segments.append(np.argmax(log_probs.data, axis=-1).astype(np.int64))

        return ModelOutput(
            log_probs=nn.stack(step_logs, axis=1),
            ratios=nn.stack(step_ratios, axis=1),
            segments=np.stack(step_segments, axis=1),
        )
