"""``repro.baselines`` - comparator methods from the paper's evaluation."""

from .centralized import pool_client_data, train_centralized
from .fc import FCRecoveryModel
from .mtrajrec import MTrajRecModel
from .registry import METHOD_NAMES, make_model_factory
from .rnn import RNNRecoveryModel
from .rntrajrec import RNTrajRecModel, segment_adjacency

__all__ = [
    "FCRecoveryModel",
    "RNNRecoveryModel",
    "MTrajRecModel",
    "RNTrajRecModel",
    "segment_adjacency",
    "METHOD_NAMES",
    "make_model_factory",
    "pool_client_data",
    "train_centralized",
]
