"""Model registry: build any method by name with one call.

The experiment harness and benchmarks refer to methods by the paper's
names ("FC+FL", "RNN+FL", "MTrajRec+FL", "RNTrajRec+FL", "LightTR");
this registry maps them to factories over a shared config, guaranteeing
every comparison uses identical vocabularies, hidden sizes and seeds.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.base import RecoveryModel, RecoveryModelConfig
from ..core.lte import LTEModel
from ..spatial.roadnet import RoadNetwork
from .fc import FCRecoveryModel
from .mtrajrec import MTrajRecModel
from .rnn import RNNRecoveryModel
from .rntrajrec import RNTrajRecModel

__all__ = ["METHOD_NAMES", "make_model_factory"]

#: Canonical method names, in the paper's table order.
METHOD_NAMES = ("FC+FL", "RNN+FL", "MTrajRec+FL", "RNTrajRec+FL", "LightTR")


def make_model_factory(method: str, config: RecoveryModelConfig,
                       network: RoadNetwork, seed: int = 0
                       ) -> Callable[[], RecoveryModel]:
    """Return a zero-argument factory building a fresh model instance.

    Every call to the factory reseeds its generator, so repeated model
    construction (server + clients) starts from identical weights -
    which is what federated averaging assumes.
    """
    name = method.lower().replace("+fl", "").strip()

    def factory() -> RecoveryModel:
        rng = np.random.default_rng(seed)
        if name == "fc":
            return FCRecoveryModel(config, rng)
        if name == "rnn":
            return RNNRecoveryModel(config, rng)
        if name == "mtrajrec":
            return MTrajRecModel(config, rng)
        if name == "rntrajrec":
            return RNTrajRecModel(config, rng, network)
        if name == "lighttr":
            return LTEModel(config, rng)
        raise ValueError(f"unknown method {method!r}; expected one of {METHOD_NAMES}")

    factory()  # validate the name eagerly
    return factory
