"""Centralized training (paper Table VI's comparator).

Pools every client's training data in one place - exactly what
federated learning avoids - and trains a single model on it.  The paper
compares centralized MTrajRec against federated LightTR to show the
privacy-preserving setup does not sacrifice accuracy.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.base import RecoveryModel
from ..core.mask import ConstraintMaskBuilder
from ..core.training import LocalTrainer, TrainingConfig
from ..data.dataset import TrajectoryDataset
from ..federated.client import ClientData

__all__ = ["pool_client_data", "train_centralized"]


def pool_client_data(client_data: list[ClientData]) -> TrajectoryDataset:
    """Merge all clients' *training* splits into one dataset.

    This is the privacy-violating data collection step of Figure 2(a).
    """
    if not client_data:
        raise ValueError("no clients to pool")
    first = client_data[0].train
    examples = []
    for data in client_data:
        examples.extend(data.train.examples)
    return TrajectoryDataset(examples, first.grid, first.network, first.keep_ratio)


def train_centralized(model_factory: Callable[[], RecoveryModel],
                      client_data: list[ClientData],
                      mask_builder: ConstraintMaskBuilder,
                      training: TrainingConfig,
                      total_epochs: int,
                      seed: int = 0) -> RecoveryModel:
    """Train one model on the pooled data for ``total_epochs`` epochs."""
    if total_epochs < 1:
        raise ValueError("total_epochs must be >= 1")
    pooled = pool_client_data(client_data)
    model = model_factory()
    trainer = LocalTrainer(model, mask_builder, training,
                           np.random.default_rng(seed))
    trainer.train_epochs(pooled, epochs=total_epochs)
    return model
