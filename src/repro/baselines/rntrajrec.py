"""RNTrajRec baseline (Chen et al., ICDE'23) - road-network enhanced
recovery with a graph encoder and transformer-style attention.

The strongest (and heaviest) federated baseline of the paper: road
segment embeddings are refined with graph convolutions over the
segment-adjacency graph, the observed sequence passes through
self-attention encoder blocks, and an attention decoder predicts the
missing points.  Its FLOPs dominate Figure 5 because of the attention
stacks - which is the comparison LightTR is designed to win.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..core.base import ModelOutput, RecoveryModel, RecoveryModelConfig
from ..data.dataset import Batch
from ..serving.programs import AttnDecodeProgram
from ..spatial.roadnet import RoadNetwork

__all__ = ["RNTrajRecModel", "segment_adjacency"]


def segment_adjacency(network: RoadNetwork, add_self_loops: bool = True) -> np.ndarray:
    """Row-normalised adjacency over the directed segment graph.

    Segment ``a`` connects to segment ``b`` when ``b`` can directly
    follow ``a`` on a route (``a.end_node == b.start_node``).
    """
    s = network.num_segments
    adj = np.zeros((s, s))
    for seg in network.segments:
        for nxt in network.successors(seg.segment_id):
            adj[seg.segment_id, nxt.segment_id] = 1.0
    if add_self_loops:
        adj += np.eye(s)
    row_sums = np.maximum(adj.sum(axis=1, keepdims=True), 1.0)
    return adj / row_sums


class GraphConv(nn.Module):
    """One GCN layer over a fixed normalised adjacency."""

    def __init__(self, adjacency: np.ndarray, in_dim: int, out_dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self._adjacency = adjacency  # constant, not a parameter
        self.linear = nn.Linear(in_dim, out_dim, rng)

    def forward(self, node_feats: nn.Tensor) -> nn.Tensor:
        aggregated = nn.Tensor(self._adjacency) @ node_feats
        return self.linear(aggregated).relu()


class RNTrajRecModel(RecoveryModel):
    """Graph-refined segment embeddings + self-attention encoder +
    attention decoder."""

    def __init__(self, config: RecoveryModelConfig, rng: np.random.Generator,
                 network: RoadNetwork, num_attention_blocks: int = 2,
                 num_gcn_layers: int = 2):
        super().__init__(config)
        if num_attention_blocks < 1 or num_gcn_layers < 1:
            raise ValueError("need at least one attention block and GCN layer")
        h = config.hidden_size
        adjacency = segment_adjacency(network)
        self.cell_embedding = nn.Embedding(config.num_cells, config.cell_emb_dim, rng)
        self.cell_embedding.decode_side = False  # encoder-side (flops walk)
        self.input_proj = nn.Linear(config.cell_emb_dim + 2, h, rng)
        self.input_proj.decode_side = False
        self.attn_blocks = nn.ModuleList(
            [nn.SelfAttention(h, rng) for _ in range(num_attention_blocks)]
        )
        self.encoder = nn.GRU(h, h, rng)

        self.seg_embedding = nn.Embedding(config.num_segments, config.seg_emb_dim, rng)
        self.gcn_layers = nn.ModuleList(
            [GraphConv(adjacency, config.seg_emb_dim, config.seg_emb_dim, rng)
             for _ in range(num_gcn_layers)]
        )
        # The GCN refinement runs once per decode session (the table is
        # constant while decoding), not once per emitted point.
        self.gcn_layers.decode_side = False
        self.attention = nn.AdditiveAttention(h, rng)
        step_input = config.seg_emb_dim + 1 + 4 + h
        self.decoder_cell = nn.GRUCell(step_input, h, rng)
        self.dense_d = nn.Linear(h, h, rng)
        self.seg_head = nn.Linear(h, config.num_segments, rng, bias=False)
        self.emb_proj = nn.Linear(config.seg_emb_dim, h, rng)
        self.ratio_head = nn.Linear(h + config.seg_emb_dim, 1, rng)

    def refined_segment_embeddings(self) -> nn.Tensor:
        """Segment embedding table after GCN refinement ``(S, E)``."""
        feats = self.seg_embedding.weight
        out: nn.Tensor = feats
        for layer in self.gcn_layers:
            out = layer(out)
        return out

    def decode_program(self, batch: Batch, log_mask) -> AttnDecodeProgram:
        """Serving-engine adapter: same decode shape as MTrajRec, but
        feeding back the GCN-refined segment-embedding table (computed
        once per session — it is constant during decoding)."""
        self._validate_mask(log_mask, batch, self.config.num_segments)
        encoder_states, h = self._encode(batch)
        return AttnDecodeProgram(
            self.refined_segment_embeddings().data, self.attention,
            self.decoder_cell, self.dense_d, self.seg_head, self.emb_proj,
            self.ratio_head, h.data, encoder_states.data, batch.obs_mask,
            self._step_extras(batch), log_mask,
        )

    def _encode(self, batch: Batch):
        emb = self.cell_embedding(batch.obs_cells)
        x = self.input_proj(nn.concat([emb, nn.Tensor(batch.obs_feats)], axis=-1))
        for block in self.attn_blocks:
            x = block(x)
        return self.encoder(x, mask=batch.obs_mask)

    def forward(self, batch: Batch, log_mask: np.ndarray,
                teacher_forcing: bool = True) -> ModelOutput:
        if not teacher_forcing:
            # Inference rides the shared decode engine (tape-free); the
            # per-step loop below is the reference it is tested against.
            packed = self._packed_inference(batch, log_mask)
            if packed is not None:
                return packed
        self._validate_mask(log_mask, batch, self.config.num_segments)
        b, t = batch.tgt_segments.shape

        encoder_states, h = self._encode(batch)

        seg_table = self.refined_segment_embeddings()  # (S, E)
        # Step fraction + guide + observed flag for every step at once,
        # in the compute dtype (bitwise equal to the per-step build).
        extras_all = self._step_extras(batch)
        prev_segments = batch.tgt_segments[:, 0].copy()
        prev_ratios = nn.Tensor(batch.tgt_ratios[:, 0].copy())

        step_logs, step_ratios, step_segments = [], [], []
        for step in range(t):
            context, _ = self.attention(h, encoder_states, mask=batch.obs_mask)
            extras = extras_all[:, step]
            prev_emb = seg_table[prev_segments]  # differentiable row gather
            z = nn.concat(
                [prev_emb, prev_ratios.reshape(-1, 1), nn.Tensor(extras), context],
                axis=-1,
            )
            h = self.decoder_cell(z, h)

            h_d = self.dense_d(h)
            logits = self.seg_head(h_d) + nn.Tensor(log_mask[:, step, :])
            log_probs = nn.log_softmax(logits, axis=-1)
            segments = np.argmax(log_probs.data, axis=-1).astype(np.int64)
            seg_emb = seg_table[segments]
            h_e = (h_d + self.emb_proj(seg_emb)).relu()
            ratios = self.ratio_head(nn.concat([h_e, seg_emb], axis=-1)).relu().reshape(-1)

            step_logs.append(log_probs)
            step_ratios.append(ratios)
            step_segments.append(segments)

            if teacher_forcing:
                prev_segments = batch.tgt_segments[:, step]
                prev_ratios = nn.Tensor(batch.tgt_ratios[:, step])
            else:
                observed = batch.observed_flags[:, step]
                prev_segments = np.where(observed, batch.tgt_segments[:, step], segments)
                prev_ratios = nn.Tensor(
                    np.where(observed, batch.tgt_ratios[:, step],
                             np.clip(ratios.data, 0.0, 1.0))
                )

        return ModelOutput(
            log_probs=nn.stack(step_logs, axis=1),
            ratios=nn.stack(step_ratios, axis=1),
            segments=np.stack(step_segments, axis=1),
        )
