"""MTrajRec baseline (Ren et al., KDD'21) - Seq2Seq multi-task recovery.

The state-of-the-art centralized comparator of the paper: a GRU encoder
that keeps *all* per-step states, and a GRU-cell decoder that attends
over them (additive attention) each step before a multi-task head
predicts segment and ratio.  Accurate but heavy: attention costs
``O(T * H^2)`` per decode step (Table II's Attn row), which is exactly
the overhead LightTR's pure-MLP operator removes.

Used both in its federated wrapper (MTrajRec+FL, Table IV) and as the
centralized upper baseline (Table VI).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..core.base import ModelOutput, RecoveryModel, RecoveryModelConfig
from ..data.dataset import Batch
from ..serving.programs import AttnDecodeProgram

__all__ = ["MTrajRecModel"]


class MTrajRecModel(RecoveryModel):
    """Seq2Seq + additive attention + multi-task head."""

    def __init__(self, config: RecoveryModelConfig, rng: np.random.Generator):
        super().__init__(config)
        h = config.hidden_size
        self.cell_embedding = nn.Embedding(config.num_cells, config.cell_emb_dim, rng)
        self.cell_embedding.decode_side = False  # encoder-side (flops walk)
        self.encoder = nn.GRU(config.cell_emb_dim + 2, h, rng)
        self.attention = nn.AdditiveAttention(h, rng)
        self.seg_embedding = nn.Embedding(config.num_segments, config.seg_emb_dim, rng)
        step_input = config.seg_emb_dim + 1 + 4 + h  # + attention context
        self.decoder_cell = nn.GRUCell(step_input, h, rng)
        self.dense_d = nn.Linear(h, h, rng)
        self.seg_head = nn.Linear(h, config.num_segments, rng, bias=False)
        self.emb_proj = nn.Linear(config.seg_emb_dim, h, rng)
        self.ratio_head = nn.Linear(h + config.seg_emb_dim, 1, rng)

    def decode_program(self, batch: Batch, log_mask) -> AttnDecodeProgram:
        """Serving-engine adapter: attention + GRU + MT head on raw arrays."""
        self._validate_mask(log_mask, batch, self.config.num_segments)
        encoder_states, h = self._encode(batch)
        return AttnDecodeProgram(
            self.seg_embedding.weight.data, self.attention, self.decoder_cell,
            self.dense_d, self.seg_head, self.emb_proj, self.ratio_head,
            h.data, encoder_states.data, batch.obs_mask,
            self._step_extras(batch), log_mask,
        )

    def _encode(self, batch: Batch):
        emb = self.cell_embedding(batch.obs_cells)
        x = nn.concat([emb, nn.Tensor(batch.obs_feats)], axis=-1)
        return self.encoder(x, mask=batch.obs_mask)  # (B, To, H), (B, H)

    def forward(self, batch: Batch, log_mask: np.ndarray,
                teacher_forcing: bool = True) -> ModelOutput:
        if not teacher_forcing:
            # Inference rides the shared decode engine (tape-free); the
            # per-step loop below is the reference it is tested against.
            packed = self._packed_inference(batch, log_mask)
            if packed is not None:
                return packed
        self._validate_mask(log_mask, batch, self.config.num_segments)
        b, t = batch.tgt_segments.shape

        encoder_states, h = self._encode(batch)

        # Step fraction + guide + observed flag for every step at once,
        # in the compute dtype (bitwise equal to the per-step build).
        extras_all = self._step_extras(batch)
        prev_segments = batch.tgt_segments[:, 0].copy()
        prev_ratios = nn.Tensor(batch.tgt_ratios[:, 0].copy())

        step_logs, step_ratios, step_segments = [], [], []
        for step in range(t):
            context, _ = self.attention(h, encoder_states, mask=batch.obs_mask)
            extras = extras_all[:, step]
            z = nn.concat(
                [self.seg_embedding(prev_segments), prev_ratios.reshape(-1, 1),
                 nn.Tensor(extras), context],
                axis=-1,
            )
            h = self.decoder_cell(z, h)

            h_d = self.dense_d(h)
            logits = self.seg_head(h_d) + nn.Tensor(log_mask[:, step, :])
            log_probs = nn.log_softmax(logits, axis=-1)
            segments = np.argmax(log_probs.data, axis=-1).astype(np.int64)
            seg_emb = self.seg_embedding(segments)
            h_e = (h_d + self.emb_proj(seg_emb)).relu()
            ratios = self.ratio_head(nn.concat([h_e, seg_emb], axis=-1)).relu().reshape(-1)

            step_logs.append(log_probs)
            step_ratios.append(ratios)
            step_segments.append(segments)

            if teacher_forcing:
                prev_segments = batch.tgt_segments[:, step]
                prev_ratios = nn.Tensor(batch.tgt_ratios[:, step])
            else:
                observed = batch.observed_flags[:, step]
                prev_segments = np.where(observed, batch.tgt_segments[:, step], segments)
                prev_ratios = nn.Tensor(
                    np.where(observed, batch.tgt_ratios[:, step],
                             np.clip(ratios.data, 0.0, 1.0))
                )

        return ModelOutput(
            log_probs=nn.stack(step_logs, axis=1),
            ratios=nn.stack(step_ratios, axis=1),
            segments=np.stack(step_segments, axis=1),
        )
