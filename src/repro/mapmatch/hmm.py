"""HMM (Viterbi) map matching.

The paper preprocesses raw GPS with the HMM map matcher of DHN [26]
(the classic Newson-Krumm formulation): emission probabilities penalise
the GPS-to-segment distance, transition probabilities penalise the
difference between the straight-line displacement and the road-network
route distance, and Viterbi decoding picks the jointly most likely
segment sequence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..spatial.geometry import Point
from ..spatial.index import SegmentIndex
from ..spatial.roadnet import RoadNetwork
from ..data.trajectory import MatchedPoint, MatchedTrajectory, RawTrajectory

__all__ = ["HMMMapMatcher", "MatchCandidate"]


@dataclass(frozen=True)
class MatchCandidate:
    """One candidate match for a GPS point."""

    segment_id: int
    ratio: float
    distance: float  # GPS point to matched position, metres
    position: Point


class HMMMapMatcher:
    """Newson-Krumm style HMM map matcher over a road network.

    Parameters
    ----------
    network:
        The road network to match onto.
    sigma:
        GPS noise standard deviation in metres (emission model).
    beta:
        Scale of the transition penalty (metres); larger tolerates more
        detour between consecutive points.
    search_radius:
        Candidate search radius around each GPS point, metres.
    max_candidates:
        Keep at most this many nearest candidates per point.
    """

    def __init__(self, network: RoadNetwork, sigma: float = 15.0,
                 beta: float = 40.0, search_radius: float = 60.0,
                 max_candidates: int = 6,
                 index: SegmentIndex | None = None):
        if sigma <= 0 or beta <= 0 or search_radius <= 0:
            raise ValueError("sigma, beta and search_radius must be positive")
        if max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        self.network = network
        self.sigma = sigma
        self.beta = beta
        self.search_radius = search_radius
        self.max_candidates = max_candidates
        self.index = index if index is not None else SegmentIndex(network)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def candidates_for(self, point: Point) -> list[MatchCandidate]:
        """Candidate matched positions for one GPS point."""
        found = self.index.query(point, self.search_radius)
        candidates = []
        for seg, _ in found[: self.max_candidates]:
            matched, ratio, dist = seg.project(point)
            candidates.append(
                MatchCandidate(seg.segment_id, ratio, dist, matched)
            )
        return candidates

    def match(self, raw: RawTrajectory) -> MatchedTrajectory:
        """Match a raw trajectory onto the network via Viterbi decoding."""
        points = [p.as_point() for p in raw.points]
        layers = [self.candidates_for(p) for p in points]
        empty = [i for i, layer in enumerate(layers) if not layer]
        if empty:
            raise ValueError(f"no match candidates for points {empty}")

        chosen = self._viterbi(points, layers)

        t0 = raw.points[0].t
        epsilon = self._estimate_epsilon(raw)
        matched_points = []
        for i, cand in enumerate(chosen):
            t = raw.points[i].t
            tid = int(math.floor((t - t0) / epsilon + 0.5))
            matched_points.append(
                MatchedPoint(cand.segment_id, cand.ratio, t, tid)
            )
        return MatchedTrajectory(
            traj_id=raw.traj_id, driver_id=raw.driver_id,
            epsilon=epsilon, points=tuple(matched_points),
        )

    # ------------------------------------------------------------------
    # model internals
    # ------------------------------------------------------------------
    def emission_logprob(self, candidate: MatchCandidate) -> float:
        """Gaussian log-likelihood of the GPS error."""
        return -0.5 * (candidate.distance / self.sigma) ** 2

    def transition_logprob(self, prev: MatchCandidate, curr: MatchCandidate,
                           straight: float) -> float:
        """Exponential penalty on |route distance - straight distance|."""
        route = self.network.route_distance(
            prev.segment_id, prev.ratio, curr.segment_id, curr.ratio
        )
        if math.isinf(route):
            return -1e12
        return -abs(route - straight) / self.beta

    def _viterbi(self, points: list[Point],
                 layers: list[list[MatchCandidate]]) -> list[MatchCandidate]:
        n = len(layers)
        scores = np.array([self.emission_logprob(c) for c in layers[0]])
        back: list[np.ndarray] = []
        for i in range(1, n):
            straight = points[i - 1].distance_to(points[i])
            prev_layer, curr_layer = layers[i - 1], layers[i]
            trans = np.empty((len(prev_layer), len(curr_layer)))
            for a, prev in enumerate(prev_layer):
                for b, curr in enumerate(curr_layer):
                    trans[a, b] = self.transition_logprob(prev, curr, straight)
            emit = np.array([self.emission_logprob(c) for c in curr_layer])
            total = scores[:, None] + trans + emit[None, :]
            back.append(np.argmax(total, axis=0))
            scores = np.max(total, axis=0)

        path = [int(np.argmax(scores))]
        for pointers in reversed(back):
            path.append(int(pointers[path[-1]]))
        path.reverse()
        return [layers[i][k] for i, k in enumerate(path)]

    @staticmethod
    def _estimate_epsilon(raw: RawTrajectory) -> float:
        """Median inter-point interval (the nominal sampling rate)."""
        times = np.array([p.t for p in raw.points])
        return float(np.median(np.diff(times)))
