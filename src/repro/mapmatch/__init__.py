"""``repro.mapmatch`` - HMM map matching of raw GPS onto road networks."""

from .hmm import HMMMapMatcher, MatchCandidate

__all__ = ["HMMMapMatcher", "MatchCandidate"]
