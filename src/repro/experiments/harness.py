"""Experiment harness: one entry point per paper table / figure.

:class:`ExperimentContext` owns the synthetic worlds, federations, and
mask builders (cached so sweeps share them), and ``run_*`` functions
regenerate each experiment's rows at a configurable scale.  The
``small`` scale keeps every benchmark in CPU-minutes; shapes (who wins,
by roughly what factor) are the reproduction target, not absolute
numbers - see EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..baselines import make_model_factory
from ..baselines.centralized import train_centralized
from ..core import (
    ConstraintMaskBuilder,
    RecoveryModelConfig,
    TrainingConfig,
)
from ..data.synthetic import SyntheticDataset, geolife_like, tdrive_like
from ..federated import (
    FederatedConfig,
    FederatedResult,
    FederatedTrainer,
    build_federation,
    train_isolated_then_average,
)
from ..metrics import MetricRow, evaluate_model

__all__ = [
    "ExperimentScale", "SCALES", "MethodRun", "ExperimentContext",
    "run_overall_comparison", "run_client_count_sweep", "run_fraction_sweep",
    "run_centralized_comparison", "run_ablation", "run_sensitivity",
    "run_design_ablations", "run_case_study", "run_convergence",
    "run_fault_tolerance_sweep",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Size knobs for a whole experiment campaign."""

    name: str
    num_drivers: int
    trajectories_per_driver: int
    points_per_trajectory: int
    num_clients: int
    rounds: int
    local_epochs: int
    hidden_size: int
    cell_emb_dim: int
    seg_emb_dim: int
    batch_size: int = 16
    lr: float = 3e-3
    mask_radius: float = 500.0
    seed: int = 7
    workers: int = 0  # > 0: process-pool round runner (identical results)
    decode_batch: int = 0  # > 0: bound the packed-decode working set
    compute_dtype: str = "float64"  # "float32": mixed-precision substrate
    backend: str = "reference"  # array backend (see repro.nn.backend)
    # --- robustness knobs (docs/ROBUSTNESS.md) ---
    min_clients_per_round: int = 1  # aggregation quorum
    task_retries: int = 1  # re-attempts per failed client task
    task_deadline: float = 0.0  # per-task wall-clock seconds (0 = none)
    fault_plan: str = ""  # e.g. "dropout=0.3,crash=0.1,seed=42" ("" = none)
    checkpoint_every: int = 0  # persist run state every K rounds (0 = never)
    checkpoint_dir: str = ""
    resume_from: str = ""  # checkpoint file or directory ("" = fresh run)
    # --- communication / async knobs (docs/PERFORMANCE.md, ROBUSTNESS.md) ---
    exchange_codec: str = ""  # "identity"/"float32"/"int8"/"int8-nofb" ("" = default)
    async_buffer: int = 0  # FedBuff buffer size K (0 = synchronous rounds)
    staleness_alpha: float = 0.5  # async staleness discount exponent
    clients_per_round: float = 0.0  # async sampling fraction (0 = client_fraction)
    latency: str = ""  # e.g. "base=1,jitter=2,heavy=0.1,seed=7" ("" = default)
    # --- client-scale knobs (docs/PERFORMANCE.md "Client scale") ---
    lazy_clients: str = ""  # "on"/"off" ("" = REPRO_LAZY_CLIENTS default)
    arena_size: int = 1  # live model slots in lazy mode
    collation_cache_entries: int = 0  # per-dataset batch-cache cap (0 = default)


SCALES: dict[str, ExperimentScale] = {
    # Unit-test scale: seconds.
    "tiny": ExperimentScale(
        name="tiny", num_drivers=6, trajectories_per_driver=4,
        points_per_trajectory=17, num_clients=3, rounds=2, local_epochs=1,
        hidden_size=24, cell_emb_dim=8, seg_emb_dim=8,
    ),
    # Benchmark scale: a couple of minutes per table.
    "small": ExperimentScale(
        name="small", num_drivers=12, trajectories_per_driver=8,
        points_per_trajectory=33, num_clients=4, rounds=6, local_epochs=2,
        hidden_size=48, cell_emb_dim=16, seg_emb_dim=16,
    ),
    # Close to the paper's protocol (20 clients); CPU-hours.
    "paper": ExperimentScale(
        name="paper", num_drivers=40, trajectories_per_driver=12,
        points_per_trajectory=33, num_clients=20, rounds=20, local_epochs=3,
        hidden_size=64, cell_emb_dim=24, seg_emb_dim=24,
    ),
}


@dataclass
class MethodRun:
    """Result of training + evaluating one method in one setting."""

    method: str
    dataset: str
    keep_ratio: float
    metrics: MetricRow
    elapsed_seconds: float
    comm_bytes: int
    history: list = field(default_factory=list)

    def as_row(self) -> dict:
        row = {"method": self.method, "dataset": self.dataset,
               "keep_ratio": self.keep_ratio, **self.metrics.as_dict()}
        row["seconds"] = self.elapsed_seconds
        row["comm_mb"] = self.comm_bytes / 1e6
        return row


class ExperimentContext:
    """Caches worlds / federations / masks across an experiment sweep."""

    DATASET_BUILDERS = {"geolife": geolife_like, "tdrive": tdrive_like}

    def __init__(self, scale: ExperimentScale):
        self.scale = scale
        self._datasets: dict[str, SyntheticDataset] = {}
        self._federations: dict[tuple, tuple] = {}
        self._masks: dict[str, ConstraintMaskBuilder] = {}

    # ------------------------------------------------------------------
    # cached building blocks
    # ------------------------------------------------------------------
    def dataset(self, name: str) -> SyntheticDataset:
        """The synthetic stand-in world for ``geolife`` or ``tdrive``."""
        if name not in self._datasets:
            builder = self.DATASET_BUILDERS.get(name)
            if builder is None:
                raise ValueError(f"unknown dataset {name!r}")
            self._datasets[name] = builder(
                num_drivers=self.scale.num_drivers,
                trajectories_per_driver=self.scale.trajectories_per_driver,
                points_per_trajectory=self.scale.points_per_trajectory,
                seed=self.scale.seed,
            )
        return self._datasets[name]

    def mask_builder(self, name: str, identity: bool = False) -> ConstraintMaskBuilder:
        key = f"{name}:identity" if identity else name
        if key not in self._masks:
            self._masks[key] = ConstraintMaskBuilder(
                self.dataset(name).network, radius=self.scale.mask_radius,
                identity=identity,
            )
        return self._masks[key]

    def federation(self, name: str, keep_ratio: float,
                   num_clients: int | None = None):
        """Cached ``(clients, global_test)`` shards."""
        clients = num_clients if num_clients is not None else self.scale.num_clients
        key = (name, keep_ratio, clients)
        if key not in self._federations:
            self._federations[key] = build_federation(
                self.dataset(name), clients, keep_ratio,
                rng=np.random.default_rng(self.scale.seed + 13),
            )
        return self._federations[key]

    def model_config(self, name: str) -> RecoveryModelConfig:
        ds = self.dataset(name)
        return RecoveryModelConfig(
            num_cells=ds.grid.num_cells,
            num_segments=ds.network.num_segments,
            cell_emb_dim=self.scale.cell_emb_dim,
            seg_emb_dim=self.scale.seg_emb_dim,
            hidden_size=self.scale.hidden_size,
            dropout=0.0,
            bbox=ds.network.bounding_box(),
        )

    def training_config(self) -> TrainingConfig:
        return TrainingConfig(epochs=self.scale.local_epochs,
                              batch_size=self.scale.batch_size, lr=self.scale.lr)

    def federated_config(self, use_meta: bool, client_fraction: float = 1.0,
                         lambda0: float = 5.0, lt: float = 0.4,
                         rounds: int | None = None,
                         dynamic_lambda: bool = True,
                         workers: int | None = None,
                         run_tag: str | None = None) -> FederatedConfig:
        scale = self.scale
        if scale.lazy_clients not in ("", "on", "off"):
            raise ValueError(
                f"lazy_clients must be 'on', 'off' or '' (default), "
                f"got {scale.lazy_clients!r}")
        return FederatedConfig(
            rounds=rounds if rounds is not None else scale.rounds,
            client_fraction=client_fraction,
            local_epochs=scale.local_epochs,
            training=self.training_config(),
            use_meta=use_meta,
            lambda0=lambda0,
            lt=lt,
            dynamic_lambda=dynamic_lambda,
            workers=scale.workers if workers is None else workers,
            min_clients_per_round=scale.min_clients_per_round,
            task_retries=scale.task_retries,
            task_deadline=scale.task_deadline or None,
            fault_plan=scale.fault_plan or None,
            checkpoint_every=scale.checkpoint_every,
            checkpoint_dir=self._scoped_checkpoint_dir(
                scale.checkpoint_dir, run_tag),
            resume_from=self._scoped_resume_from(scale.resume_from, run_tag),
            exchange_codec=scale.exchange_codec or None,
            async_buffer=scale.async_buffer,
            staleness_alpha=scale.staleness_alpha,
            clients_per_round=scale.clients_per_round or None,
            latency=scale.latency or None,
            lazy_clients=(None if not scale.lazy_clients
                          else scale.lazy_clients == "on"),
            arena_size=scale.arena_size,
            collation_cache_entries=scale.collation_cache_entries,
        )

    @staticmethod
    def _scoped_checkpoint_dir(base: str, run_tag: str | None) -> str | None:
        """Per-run checkpoint subdirectory.

        One experiment invocation trains many federations (method x
        dataset x sweep point), and their models disagree on parameter
        count — unscoped, every run would overwrite the same
        ``round_*.ckpt`` files and a resume would hand one method
        another method's weights.
        """
        if not base:
            return None
        return os.path.join(base, run_tag) if run_tag else base

    @staticmethod
    def _scoped_resume_from(base: str, run_tag: str | None) -> str | None:
        if not base:
            return None
        # A run resumes from its own tagged subdirectory when the resume
        # target is a directory laid out by _scoped_checkpoint_dir; a
        # direct checkpoint file (or an untagged flat directory) is used
        # as given.
        if run_tag and os.path.isdir(os.path.join(base, run_tag)):
            return os.path.join(base, run_tag)
        return base

    # ------------------------------------------------------------------
    # the core run
    # ------------------------------------------------------------------
    def run_method(self, method: str, dataset_name: str, keep_ratio: float,
                   num_clients: int | None = None, client_fraction: float = 1.0,
                   use_meta: bool | None = None, lambda0: float = 5.0,
                   lt: float = 0.4, rounds: int | None = None,
                   isolated: bool = False, mask_identity: bool = False,
                   dynamic_lambda: bool = True,
                   workers: int | None = None,
                   decode_batch: int | None = None) -> MethodRun:
        """Train ``method`` federated and evaluate on the pooled test set.

        ``workers`` (default: the scale's setting) runs each round's
        selected clients in that many worker processes; results are
        bit-identical to the serial run, only wall-clock changes.
        ``decode_batch`` (default: the scale's setting; 0 = unbounded)
        caps how many trajectories the evaluation's packed decode steps
        together — a memory knob, not an accuracy knob.  The scale's
        ``compute_dtype`` scopes the whole run (model construction,
        training, and evaluation) to that kernel precision; ``float64``
        (the default) is the bitwise reference substrate.  ``backend``
        likewise scopes the array-backend selection (``reference`` is
        the default; ``workspace`` is bitwise-identical).
        """
        clients, global_test = self.federation(dataset_name, keep_ratio, num_clients)
        config = self.model_config(dataset_name)
        mask = self.mask_builder(dataset_name, identity=mask_identity)
        with nn.use_compute_dtype(self.scale.compute_dtype), \
                nn.use_backend(self.scale.backend):
            factory = make_model_factory(method, config,
                                         self.dataset(dataset_name).network,
                                         seed=self.scale.seed + 29)
            meta = use_meta if use_meta is not None else (method == "LightTR")
            # Unique per training run within one experiment invocation,
            # so checkpoint subdirectories never collide across the
            # method/dataset/hyper-parameter grid.
            run_tag = re.sub(r"[^\w.-]+", "-", (
                f"{method}_{dataset_name}_k{keep_ratio:g}_c{len(clients)}"
                f"_f{client_fraction:g}_l{lambda0:g}_t{lt:g}"
                f"_r{rounds if rounds is not None else self.scale.rounds}"
                f"_u{int(meta)}_d{int(dynamic_lambda)}"
                f"_m{int(mask_identity)}_i{int(isolated)}"))
            fed_config = self.federated_config(use_meta=meta,
                                               client_fraction=client_fraction,
                                               lambda0=lambda0, lt=lt,
                                               rounds=rounds,
                                               dynamic_lambda=dynamic_lambda,
                                               workers=workers,
                                               run_tag=run_tag)
            start = time.perf_counter()
            if isolated:
                result: FederatedResult = train_isolated_then_average(
                    factory, clients, mask, fed_config, global_test,
                    seed=self.scale.seed,
                )
            else:
                result = FederatedTrainer(factory, clients, mask, fed_config,
                                          global_test,
                                          seed=self.scale.seed).run()
            elapsed = time.perf_counter() - start
            if decode_batch is None:
                decode_batch = self.scale.decode_batch
            row = evaluate_model(result.global_model, mask, global_test,
                                 decode_batch=decode_batch or None)
        return MethodRun(
            method=method, dataset=dataset_name, keep_ratio=keep_ratio,
            metrics=row, elapsed_seconds=elapsed,
            comm_bytes=result.ledger.total_bytes,
            history=[r.global_accuracy for r in result.history],
        )


# ----------------------------------------------------------------------
# experiment entry points (one per table / figure)
# ----------------------------------------------------------------------

def run_overall_comparison(context: ExperimentContext,
                           datasets: tuple[str, ...] = ("geolife", "tdrive"),
                           keep_ratios: tuple[float, ...] = (0.0625, 0.125, 0.25),
                           methods: tuple[str, ...] = (
                               "FC+FL", "RNN+FL", "MTrajRec+FL",
                               "RNTrajRec+FL", "LightTR"),
                           ) -> list[MethodRun]:
    """Table IV: every method x dataset x keep ratio."""
    runs = []
    for dataset in datasets:
        for keep in keep_ratios:
            for method in methods:
                runs.append(context.run_method(method, dataset, keep))
    return runs


def run_client_count_sweep(context: ExperimentContext,
                           datasets: tuple[str, ...] = ("geolife", "tdrive"),
                           client_counts: tuple[int, ...] = (5, 10, 15, 20),
                           keep_ratio: float = 0.125) -> list[MethodRun]:
    """Table V: LightTR accuracy vs number of clients."""
    runs = []
    for dataset in datasets:
        for count in client_counts:
            run = context.run_method("LightTR", dataset, keep_ratio,
                                     num_clients=count)
            run.method = f"LightTR@{count}clients"
            runs.append(run)
    return runs


def run_fraction_sweep(context: ExperimentContext,
                       datasets: tuple[str, ...] = ("geolife", "tdrive"),
                       fractions: tuple[float, ...] = (0.2, 0.5, 0.8, 1.0),
                       keep_ratio: float = 0.125) -> list[MethodRun]:
    """Figure 6: LightTR accuracy vs sampled client fraction."""
    runs = []
    for dataset in datasets:
        for fraction in fractions:
            run = context.run_method("LightTR", dataset, keep_ratio,
                                     client_fraction=fraction)
            run.method = f"LightTR@{int(fraction * 100)}%"
            runs.append(run)
    return runs


def run_centralized_comparison(context: ExperimentContext,
                               datasets: tuple[str, ...] = ("geolife", "tdrive"),
                               keep_ratios: tuple[float, ...] = (0.0625, 0.125, 0.25),
                               ) -> list[MethodRun]:
    """Table VI: centralized MTrajRec vs federated LightTR."""
    runs = []
    for dataset in datasets:
        for keep in keep_ratios:
            clients, global_test = context.federation(dataset, keep)
            config = context.model_config(dataset)
            mask = context.mask_builder(dataset)
            # The centralized leg bypasses run_method, so scope the
            # compute dtype here too — Table VI must compare both
            # methods on the same substrate.
            with nn.use_compute_dtype(context.scale.compute_dtype), \
                    nn.use_backend(context.scale.backend):
                factory = make_model_factory("MTrajRec", config,
                                             context.dataset(dataset).network,
                                             seed=context.scale.seed + 29)
                total_epochs = context.scale.rounds * context.scale.local_epochs
                start = time.perf_counter()
                model = train_centralized(factory, clients, mask,
                                          context.training_config(), total_epochs,
                                          seed=context.scale.seed)
                elapsed = time.perf_counter() - start
                row = evaluate_model(model, mask, global_test)
            runs.append(MethodRun(
                method="MTrajRec(centralized)", dataset=dataset, keep_ratio=keep,
                metrics=row, elapsed_seconds=elapsed, comm_bytes=0,
            ))
            runs.append(context.run_method("LightTR", dataset, keep))
    return runs


def run_ablation(context: ExperimentContext,
                 datasets: tuple[str, ...] = ("geolife", "tdrive"),
                 keep_ratio: float = 0.125) -> list[MethodRun]:
    """Figure 7: w/o FL, w/o LS (lightweight ST-operator), w/o Meta."""
    runs = []
    for dataset in datasets:
        wofl = context.run_method("LightTR", dataset, keep_ratio,
                                  use_meta=False, isolated=True)
        wofl.method = "w/o FL"
        runs.append(wofl)

        wols = context.run_method("MTrajRec", dataset, keep_ratio, use_meta=True)
        wols.method = "w/o LS"
        runs.append(wols)

        wometa = context.run_method("LightTR", dataset, keep_ratio, use_meta=False)
        wometa.method = "w/o Meta"
        runs.append(wometa)

        runs.append(context.run_method("LightTR", dataset, keep_ratio))
    return runs


def run_design_ablations(context: ExperimentContext,
                         datasets: tuple[str, ...] = ("geolife",),
                         keep_ratio: float = 0.125) -> list[MethodRun]:
    """Design-choice ablations beyond the paper's Figure 7:

    * fixed lambda0 instead of the Eq. 18 adaptive schedule;
    * constraint mask disabled (identity mask).

    These probe the two mechanisms DESIGN.md flags as load-bearing.
    """
    runs = []
    for dataset in datasets:
        full = context.run_method("LightTR", dataset, keep_ratio)
        full.method = "LightTR (full)"
        runs.append(full)

        fixed = context.run_method("LightTR", dataset, keep_ratio,
                                   dynamic_lambda=False)
        fixed.method = "fixed lambda"
        runs.append(fixed)

        nomask = context.run_method("LightTR", dataset, keep_ratio,
                                    mask_identity=True)
        nomask.method = "no constraint mask"
        runs.append(nomask)
    return runs


def run_sensitivity(context: ExperimentContext,
                    datasets: tuple[str, ...] = ("geolife", "tdrive"),
                    lambdas: tuple[float, ...] = (0.1, 1.0, 5.0, 10.0),
                    thresholds: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6),
                    keep_ratio: float = 0.125) -> list[MethodRun]:
    """Figure 8: sensitivity to lambda0 and the threshold lt."""
    runs = []
    for dataset in datasets:
        for lam in lambdas:
            run = context.run_method("LightTR", dataset, keep_ratio, lambda0=lam)
            run.method = f"lambda={lam}"
            runs.append(run)
        for lt in thresholds:
            run = context.run_method("LightTR", dataset, keep_ratio, lt=lt)
            run.method = f"lt={lt}"
            runs.append(run)
    return runs


def run_case_study(context: ExperimentContext, dataset_name: str = "tdrive",
                   keep_ratio: float = 0.125,
                   methods: tuple[str, ...] = ("LightTR", "RNN+FL", "RNTrajRec+FL"),
                   ) -> dict:
    """Figure 9: recovered points vs ground truth for one trajectory.

    Returns observed / ground-truth / per-method predicted coordinate
    arrays for the first pooled-test trajectory.
    """
    from ..core.recovery import TrajectoryRecovery

    clients, global_test = context.federation(dataset_name, keep_ratio)
    network = context.dataset(dataset_name).network
    mask = context.mask_builder(dataset_name)
    example = global_test.examples[0]
    single = type(global_test)([example], global_test.grid, network, keep_ratio)

    truth_xy = np.array([
        [p.x, p.y] for p in (
            network.position_at(int(s), float(r))
            for s, r in zip(example.tgt_segments, example.tgt_ratios)
        )
    ])
    observed_xy = example.obs_xy.copy()

    predictions: dict[str, np.ndarray] = {}
    # Trains its own models rather than going through run_method, so
    # scope the compute dtype here too.
    with nn.use_compute_dtype(context.scale.compute_dtype), \
            nn.use_backend(context.scale.backend):
        for method in methods:
            run_cfg = context.federated_config(use_meta=(method == "LightTR"))
            factory = make_model_factory(method,
                                         context.model_config(dataset_name),
                                         network, seed=context.scale.seed + 29)
            result = FederatedTrainer(factory, clients, mask, run_cfg,
                                      global_test,
                                      seed=context.scale.seed).run()
            recovery = TrajectoryRecovery(result.global_model, mask)
            recovered = recovery.recover_dataset(single)[0].trajectory
            predictions[method] = np.array([
                [p.x, p.y] for p in recovered.positions(network)
            ])
    return {
        "ground_truth": truth_xy,
        "observed": observed_xy,
        "predictions": predictions,
        "observed_flags": example.observed_flags.copy(),
    }


def run_fault_tolerance_sweep(context: ExperimentContext,
                              dataset_name: str = "geolife",
                              keep_ratio: float = 0.125,
                              dropout_rates: tuple[float, ...] = (
                                  0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
                              fault_seed: int = 1013,
                              task_retries: int = 0,
                              workers: int | None = None) -> list[dict]:
    """Failure-scenario sweep: global accuracy vs injected dropout rate.

    Each run trains LightTR (without the meta module, to keep the sweep
    in CPU-seconds) under a seeded dropout-only
    :class:`~repro.federated.faults.FaultPlan` and reports the final
    global accuracy alongside the failure telemetry.  ``task_retries``
    defaults to 0 so the dropout rate is felt undamped — retried
    attempts redraw their fault and would mask it.
    """
    import dataclasses

    clients, global_test = context.federation(dataset_name, keep_ratio)
    mask = context.mask_builder(dataset_name)
    rows = []
    with nn.use_compute_dtype(context.scale.compute_dtype), \
            nn.use_backend(context.scale.backend):
        factory = make_model_factory("LightTR",
                                     context.model_config(dataset_name),
                                     context.dataset(dataset_name).network,
                                     seed=context.scale.seed + 29)
        for rate in dropout_rates:
            plan = f"dropout={rate:g},seed={fault_seed}" if rate else None
            config = dataclasses.replace(
                context.federated_config(
                    use_meta=False, workers=workers,
                    run_tag=f"faults_{dataset_name}_d{rate:g}"),
                fault_plan=plan, task_retries=task_retries,
            )
            result = FederatedTrainer(factory, clients, mask, config,
                                      global_test,
                                      seed=context.scale.seed).run()
            history = result.history
            rows.append({
                "dropout": rate,
                "accuracy": history[-1].global_accuracy,
                "rounds": len(history),
                "rounds_skipped": sum(1 for r in history if not r.aggregated),
                "failed_client_rounds": sum(len(r.failures) for r in history),
                "completed_client_rounds": sum(len(r.completed_clients)
                                               for r in history),
            })
    return rows


def run_convergence(context: ExperimentContext, dataset_name: str = "geolife",
                    keep_ratio: float = 0.125,
                    methods: tuple[str, ...] = ("RNN+FL", "MTrajRec+FL", "LightTR"),
                    rounds: int | None = None) -> dict[str, list[float]]:
    """Companion convergence curves: per-round global test accuracy."""
    curves = {}
    for method in methods:
        run = context.run_method(method, dataset_name, keep_ratio, rounds=rounds)
        curves[method] = run.history
    return curves
