"""``repro.experiments`` - harness regenerating every paper table/figure."""

from .harness import (
    SCALES,
    ExperimentContext,
    ExperimentScale,
    MethodRun,
    run_ablation,
    run_case_study,
    run_centralized_comparison,
    run_client_count_sweep,
    run_convergence,
    run_design_ablations,
    run_fault_tolerance_sweep,
    run_fraction_sweep,
    run_overall_comparison,
    run_sensitivity,
)
from .reporting import (
    ascii_scatter,
    format_comparison_table,
    format_curves,
    format_fault_rows,
    format_table,
)

__all__ = [
    "ExperimentScale", "SCALES", "ExperimentContext", "MethodRun",
    "run_overall_comparison", "run_client_count_sweep", "run_fraction_sweep",
    "run_centralized_comparison", "run_ablation", "run_sensitivity",
    "run_design_ablations", "run_case_study", "run_convergence",
    "run_fault_tolerance_sweep",
    "format_table", "format_comparison_table", "ascii_scatter", "format_curves",
    "format_fault_rows",
]
