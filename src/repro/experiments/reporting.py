"""Plain-text reporting: the tables and ASCII figures the benches print.

Library code never prints; benchmarks and examples call these helpers
to render :class:`~repro.experiments.harness.MethodRun` lists the same
way the paper lays out its tables.
"""

from __future__ import annotations

import numpy as np

from .harness import MethodRun

__all__ = ["format_table", "format_comparison_table", "ascii_scatter",
           "format_curves", "format_fault_rows"]


def format_fault_rows(rows: list[dict], title: str = "") -> str:
    """Render :func:`~repro.experiments.harness.run_fault_tolerance_sweep`
    rows (accuracy vs injected dropout rate) as an aligned text table."""
    headers = ["dropout", "accuracy", "rounds", "skipped", "failed", "completed"]
    body = [
        [
            f"{row['dropout']:.0%}",
            f"{row['accuracy']:.3f}",
            str(row["rounds"]),
            str(row["rounds_skipped"]),
            str(row["failed_client_rounds"]),
            str(row["completed_client_rounds"]),
        ]
        for row in rows
    ]
    return _render(headers, body, title)


def format_table(runs: list[MethodRun], title: str = "") -> str:
    """Render runs as an aligned text table (one row per run)."""
    headers = ["method", "dataset", "keep", "recall", "precision", "mae", "rmse", "sec"]
    rows = [
        [
            run.method,
            run.dataset,
            f"{run.keep_ratio:.4f}".rstrip("0").rstrip("."),
            f"{run.metrics.recall:.3f}",
            f"{run.metrics.precision:.3f}",
            f"{run.metrics.mae:.3f}",
            f"{run.metrics.rmse:.3f}",
            f"{run.elapsed_seconds:.1f}",
        ]
        for run in runs
    ]
    return _render(headers, rows, title)


def format_comparison_table(runs: list[MethodRun], title: str = "") -> str:
    """Paper-style layout: methods as rows, keep ratios as column groups."""
    datasets = sorted({r.dataset for r in runs})
    keeps = sorted({r.keep_ratio for r in runs})
    methods = list(dict.fromkeys(r.method for r in runs))  # keep order
    blocks = []
    for dataset in datasets:
        headers = ["method"]
        for keep in keeps:
            pct = f"{keep * 100:g}%"
            headers += [f"R@{pct}", f"P@{pct}", f"MAE@{pct}", f"RMSE@{pct}"]
        rows = []
        for method in methods:
            row = [method]
            for keep in keeps:
                match = [r for r in runs
                         if r.method == method and r.dataset == dataset
                         and abs(r.keep_ratio - keep) < 1e-12]
                if match:
                    m = match[0].metrics
                    row += [f"{m.recall:.3f}", f"{m.precision:.3f}",
                            f"{m.mae:.3f}", f"{m.rmse:.3f}"]
                else:
                    row += ["-", "-", "-", "-"]
            rows.append(row)
        blocks.append(_render(headers, rows, f"{title} [{dataset}]"))
    return "\n".join(blocks)


def ascii_scatter(points_by_label: dict[str, np.ndarray], width: int = 64,
                  height: int = 24, title: str = "") -> str:
    """ASCII scatter plot of labelled 2-D point sets (Figure 9 stand-in).

    Each label's first character marks its points; later labels
    overwrite earlier ones where they collide.
    """
    all_points = np.concatenate([p for p in points_by_label.values() if len(p)])
    min_xy = all_points.min(axis=0)
    max_xy = all_points.max(axis=0)
    span = np.maximum(max_xy - min_xy, 1e-9)
    canvas = [[" "] * width for _ in range(height)]
    for label, points in points_by_label.items():
        marker = label[0]
        for x, y in np.asarray(points):
            col = int((x - min_xy[0]) / span[0] * (width - 1))
            row = int((y - min_xy[1]) / span[1] * (height - 1))
            canvas[height - 1 - row][col] = marker
    legend = "  ".join(f"{label[0]}={label}" for label in points_by_label)
    lines = []
    if title:
        lines.append(title)
    lines.append("+" + "-" * width + "+")
    lines.extend("|" + "".join(row) + "|" for row in canvas)
    lines.append("+" + "-" * width + "+")
    lines.append(legend)
    return "\n".join(lines)


def format_curves(curves: dict[str, list[float]], title: str = "",
                  width: int = 48) -> str:
    """Sparkline-style convergence curves (per-round accuracy)."""
    blocks = " .:-=+*#%@"
    lines = [title] if title else []
    for label, values in curves.items():
        if not values:
            lines.append(f"{label:>16}: (no data)")
            continue
        arr = np.asarray(values, dtype=float)
        lo, hi = float(arr.min()), float(arr.max())
        span = (hi - lo) or 1.0
        chars = "".join(
            blocks[int((v - lo) / span * (len(blocks) - 1))] for v in arr
        )
        lines.append(f"{label:>16}: {chars}  (first={arr[0]:.3f} last={arr[-1]:.3f})")
    return "\n".join(lines)


def _render(headers: list[str], rows: list[list[str]], title: str) -> str:
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(r) for r in rows)
    return "\n".join(parts)
