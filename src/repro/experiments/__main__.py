"""Command-line entry point: regenerate any paper experiment.

Usage::

    python -m repro.experiments table4 --scale tiny
    python -m repro.experiments fig7 --scale small --datasets geolife
    python -m repro.experiments all --scale tiny

Each experiment prints the same rows/series its benchmark publishes.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from .harness import (
    SCALES,
    ExperimentContext,
    run_ablation,
    run_case_study,
    run_centralized_comparison,
    run_client_count_sweep,
    run_convergence,
    run_fault_tolerance_sweep,
    run_fraction_sweep,
    run_overall_comparison,
    run_sensitivity,
)
from .reporting import (
    ascii_scatter,
    format_comparison_table,
    format_curves,
    format_fault_rows,
    format_table,
)

EXPERIMENTS = ("table4", "table5", "table6", "fig5", "fig6", "fig7", "fig8",
               "fig9", "fig10", "faults")


def _dispatch(name: str, context: ExperimentContext, datasets: tuple[str, ...]) -> str:
    if name == "table4":
        return format_comparison_table(
            run_overall_comparison(context, datasets=datasets),
            title="Table IV: overall comparison")
    if name == "table5":
        return format_table(
            run_client_count_sweep(context, datasets=datasets,
                                   client_counts=(2, context.scale.num_clients)),
            title="Table V: effect of the number of clients")
    if name == "table6":
        return format_comparison_table(
            run_centralized_comparison(context, datasets=datasets),
            title="Table VI: centralized vs LightTR")
    if name == "fig5":
        from ..baselines import make_model_factory
        from ..core.training import LocalTrainer
        from ..metrics import profile_model
        import numpy as np

        clients, _ = context.federation(datasets[0], 0.125)
        config = context.model_config(datasets[0])
        network = context.dataset(datasets[0]).network
        lines = ["Figure 5: running efficiency"]
        for method in ("RNN+FL", "MTrajRec+FL", "RNTrajRec+FL", "LightTR"):
            model = make_model_factory(method, config, network)()
            trainer = LocalTrainer(model, context.mask_builder(datasets[0]),
                                   context.training_config(),
                                   np.random.default_rng(0))
            trainer.train_epoch(clients[0].train)
            lines.append(str(profile_model(
                method, model, trainer, clients[0].train,
                context.scale.points_per_trajectory)))
        return "\n".join(lines)
    if name == "fig6":
        return format_table(run_fraction_sweep(context, datasets=datasets),
                            title="Figure 6: effect of client fractions")
    if name == "fig7":
        return format_table(run_ablation(context, datasets=datasets),
                            title="Figure 7: ablation study")
    if name == "fig8":
        return format_table(run_sensitivity(context, datasets=datasets),
                            title="Figure 8: parameter sensitivity")
    if name == "fig9":
        result = run_case_study(context, dataset_name=datasets[0],
                                methods=("LightTR",))
        return ascii_scatter(
            {"truth": result["ground_truth"], "observed": result["observed"],
             "xpred": result["predictions"]["LightTR"]},
            title="Figure 9: case study")
    if name == "fig10":
        return format_curves(run_convergence(context, dataset_name=datasets[0]),
                             title="Convergence (per-round global accuracy)")
    if name == "faults":
        return format_fault_rows(
            run_fault_tolerance_sweep(context, dataset_name=datasets[0]),
            title="Fault tolerance: accuracy vs injected dropout rate")
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate LightTR paper experiments.")
    parser.add_argument("experiment", choices=(*EXPERIMENTS, "all"))
    parser.add_argument("--scale", choices=sorted(SCALES), default="tiny")
    parser.add_argument("--datasets", nargs="+", default=["geolife", "tdrive"],
                        choices=["geolife", "tdrive"])
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="run each federated round's clients in N worker "
                             "processes (results are identical; default: the "
                             "scale's setting, 0 = serial)")
    parser.add_argument("--decode-batch", type=int, default=None, metavar="N",
                        help="cap the packed-decode working set at N "
                             "trajectories during evaluation (results are "
                             "identical; default: the scale's setting, "
                             "0 = unbounded)")
    parser.add_argument("--compute-dtype", choices=["float32", "float64"],
                        default=None,
                        help="kernel/tensor precision for training and "
                             "inference (float32: mixed-precision substrate "
                             "with float64 accumulations and optimizer "
                             "master state; default: the scale's setting, "
                             "float64 = bitwise reference)")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="array backend for kernel math (reference: "
                             "plain NumPy, the default; workspace: "
                             "buffer-reusing hot kernels, bitwise-identical "
                             "results; numba when that package is "
                             "installed; see REPRO_BACKEND)")
    parser.add_argument("--exchange-codec", default=None, metavar="NAME",
                        help="wire codec for parameter exchange (identity: "
                             "raw float64, the default; float32: half-width "
                             "casts; int8: per-chunk absmax quantization "
                             "with error feedback; int8-nofb: int8 without "
                             "error feedback; see REPRO_EXCHANGE_CODEC)")
    parser.add_argument("--async-buffer", type=int, default=None, metavar="K",
                        help="enable asynchronous FedBuff-style aggregation: "
                             "flush the global model every K buffered "
                             "uploads instead of waiting for the whole "
                             "cohort (default: 0 = synchronous rounds)")
    parser.add_argument("--staleness-alpha", type=float, default=None,
                        metavar="ALPHA",
                        help="staleness discount exponent for async "
                             "aggregation: an upload trained s versions ago "
                             "is down-weighted by 1/(1+s)^ALPHA (0 disables "
                             "the discount; default: 0.5)")
    parser.add_argument("--clients-per-round", type=float, default=None,
                        metavar="FRACTION",
                        help="adaptive sampling fraction of idle clients "
                             "dispatched per async wave, in (0, 1] "
                             "(default: dispatch every idle client)")
    parser.add_argument("--latency", default=None, metavar="SPEC",
                        help="deterministic simulated client latency for "
                             "async waves, e.g. "
                             "'base=1,jitter=2,heavy=0.1,seed=7' (see "
                             "docs/ROBUSTNESS.md)")
    parser.add_argument("--lazy-clients", default=None, choices=["on", "off"],
                        help="materialise clients lazily: client state lives "
                             "in flat shards and models in a bounded arena, "
                             "so thousand-client federations fit in memory "
                             "(bit-identical round histories; default: the "
                             "REPRO_LAZY_CLIENTS process default)")
    parser.add_argument("--arena-size", type=int, default=None, metavar="N",
                        help="live model/trainer slots in the lazy-clients "
                             "model arena (default: 1; only consulted with "
                             "--lazy-clients on)")
    parser.add_argument("--fault-plan", default=None, metavar="SPEC",
                        help="inject deterministic client faults, e.g. "
                             "'dropout=0.3,crash=0.1,seed=42' (see "
                             "docs/ROBUSTNESS.md and REPRO_FAULT_PLAN)")
    parser.add_argument("--task-retries", type=int, default=None, metavar="N",
                        help="re-attempts per failed client task before the "
                             "client is dropped for the round (default: the "
                             "scale's setting)")
    parser.add_argument("--task-deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="per-task wall-clock deadline; an overrun counts "
                             "as a client failure (default: none)")
    parser.add_argument("--min-clients", type=int, default=None, metavar="N",
                        help="aggregation quorum: hold the global model and "
                             "skip the round when fewer than N uploads "
                             "survive (default: 1)")
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="K",
                        help="persist a resumable checkpoint every K rounds "
                             "(requires --checkpoint-dir; default: never)")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="directory for round checkpoints")
    parser.add_argument("--resume-from", default=None, metavar="PATH",
                        help="resume federated runs from a checkpoint file "
                             "or the latest checkpoint in a directory; the "
                             "resumed run is bit-identical to an "
                             "uninterrupted one")
    args = parser.parse_args(argv)

    scale = SCALES[args.scale]
    if args.workers is not None:
        scale = dataclasses.replace(scale, workers=args.workers)
    if args.decode_batch is not None:
        scale = dataclasses.replace(scale, decode_batch=args.decode_batch)
    if args.compute_dtype is not None:
        scale = dataclasses.replace(scale, compute_dtype=args.compute_dtype)
    if args.backend is not None:
        scale = dataclasses.replace(scale, backend=args.backend)
    if args.exchange_codec is not None:
        scale = dataclasses.replace(scale, exchange_codec=args.exchange_codec)
    if args.async_buffer is not None:
        scale = dataclasses.replace(scale, async_buffer=args.async_buffer)
    if args.staleness_alpha is not None:
        scale = dataclasses.replace(scale, staleness_alpha=args.staleness_alpha)
    if args.clients_per_round is not None:
        scale = dataclasses.replace(scale,
                                    clients_per_round=args.clients_per_round)
    if args.latency is not None:
        scale = dataclasses.replace(scale, latency=args.latency)
    if args.lazy_clients is not None:
        scale = dataclasses.replace(scale, lazy_clients=args.lazy_clients)
    if args.arena_size is not None:
        scale = dataclasses.replace(scale, arena_size=args.arena_size)
    if args.fault_plan is not None:
        scale = dataclasses.replace(scale, fault_plan=args.fault_plan)
    if args.task_retries is not None:
        scale = dataclasses.replace(scale, task_retries=args.task_retries)
    if args.task_deadline is not None:
        scale = dataclasses.replace(scale, task_deadline=args.task_deadline)
    if args.min_clients is not None:
        scale = dataclasses.replace(scale, min_clients_per_round=args.min_clients)
    if args.checkpoint_every is not None:
        scale = dataclasses.replace(scale, checkpoint_every=args.checkpoint_every)
    if args.checkpoint_dir is not None:
        scale = dataclasses.replace(scale, checkpoint_dir=args.checkpoint_dir)
    if args.resume_from is not None:
        scale = dataclasses.replace(scale, resume_from=args.resume_from)
    context = ExperimentContext(scale)
    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        print(_dispatch(name, context, tuple(args.datasets)))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
