"""Synthetic road network generators.

The paper evaluates on Beijing (Geolife, T-Drive); without those maps we
generate Beijing-like street grids: a perturbed lattice of intersections
with bidirectional streets, optional diagonal avenues, and random street
removals that preserve strong connectivity.  Segment lengths land in the
100-500 m range typical of urban blocks.
"""

from __future__ import annotations

import numpy as np

from .geometry import Point
from .roadnet import RoadNetwork, RoadSegment

__all__ = ["grid_city", "ring_city"]


def grid_city(nx: int = 8, ny: int = 8, spacing: float = 250.0,
              jitter: float = 0.15, drop_prob: float = 0.08,
              diagonal_prob: float = 0.05,
              rng: np.random.Generator | None = None) -> RoadNetwork:
    """Generate a perturbed-lattice city road network.

    Parameters
    ----------
    nx, ny:
        Intersections along each axis.
    spacing:
        Nominal block edge length in metres.
    jitter:
        Node position noise as a fraction of ``spacing``.
    drop_prob:
        Probability of removing a street (both directions); removals
        that would disconnect the undirected lattice are skipped.
    diagonal_prob:
        Probability of adding a diagonal street across a block.
    rng:
        Seeded generator; a default seeded generator is used if omitted
        so the function is deterministic by default.
    """
    if nx < 2 or ny < 2:
        raise ValueError("grid_city needs at least a 2x2 lattice")
    rng = rng if rng is not None else np.random.default_rng(7)

    nodes: dict[int, Point] = {}
    for j in range(ny):
        for i in range(nx):
            node_id = j * nx + i
            x = i * spacing + rng.normal(0.0, jitter * spacing)
            y = j * spacing + rng.normal(0.0, jitter * spacing)
            nodes[node_id] = Point(float(x), float(y))

    # Undirected street set as node-id pairs.
    streets: list[tuple[int, int]] = []
    for j in range(ny):
        for i in range(nx):
            node = j * nx + i
            if i + 1 < nx:
                streets.append((node, node + 1))
            if j + 1 < ny:
                streets.append((node, node + nx))
            if i + 1 < nx and j + 1 < ny and rng.random() < diagonal_prob:
                streets.append((node, node + nx + 1))

    streets = _drop_streets(streets, set(nodes), drop_prob, rng)

    segments: list[RoadSegment] = []
    for a, b in streets:
        for u, v in ((a, b), (b, a)):
            segments.append(
                RoadSegment(
                    segment_id=len(segments),
                    start_node=u,
                    end_node=v,
                    start=nodes[u],
                    end=nodes[v],
                )
            )
    return RoadNetwork(nodes, segments)


def ring_city(num_nodes: int = 24, radius: float = 800.0, spokes: int = 6,
              rng: np.random.Generator | None = None) -> RoadNetwork:
    """Generate a ring road with spokes to a central hub.

    A deliberately different topology from :func:`grid_city`, used by
    tests to make sure nothing assumes lattice structure.
    """
    if num_nodes < 3:
        raise ValueError("ring_city needs at least 3 ring nodes")
    rng = rng if rng is not None else np.random.default_rng(11)
    nodes: dict[int, Point] = {}
    for k in range(num_nodes):
        angle = 2.0 * np.pi * k / num_nodes
        r = radius * (1.0 + rng.normal(0.0, 0.03))
        nodes[k] = Point(float(r * np.cos(angle)), float(r * np.sin(angle)))
    hub = num_nodes
    nodes[hub] = Point(0.0, 0.0)

    streets = [(k, (k + 1) % num_nodes) for k in range(num_nodes)]
    spoke_nodes = np.linspace(0, num_nodes, num=spokes, endpoint=False, dtype=int)
    streets.extend((int(k), hub) for k in spoke_nodes)

    segments: list[RoadSegment] = []
    for a, b in streets:
        for u, v in ((a, b), (b, a)):
            segments.append(
                RoadSegment(
                    segment_id=len(segments),
                    start_node=u,
                    end_node=v,
                    start=nodes[u],
                    end=nodes[v],
                )
            )
    return RoadNetwork(nodes, segments)


def _drop_streets(streets: list[tuple[int, int]], node_ids: set[int],
                  drop_prob: float, rng: np.random.Generator) -> list[tuple[int, int]]:
    """Randomly remove streets while keeping the undirected graph connected."""
    if drop_prob <= 0:
        return streets
    import networkx as nx

    graph = nx.Graph()
    graph.add_nodes_from(node_ids)
    graph.add_edges_from(streets)
    kept = list(streets)
    order = rng.permutation(len(kept))
    for idx in order:
        if rng.random() >= drop_prob:
            continue
        a, b = kept[idx]
        graph.remove_edge(a, b)
        if nx.is_connected(graph):
            kept[idx] = None  # type: ignore[call-overload]
        else:
            graph.add_edge(a, b)
    return [s for s in kept if s is not None]
