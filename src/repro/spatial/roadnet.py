"""Directed road networks (paper Definition 1) and network distances.

A :class:`RoadNetwork` holds intersection nodes and directed
:class:`RoadSegment` edges.  It provides the two operations everything
else is built on:

* ``position_at(segment, ratio)`` - the planar point of a map-matched
  point ``(e, r)`` (Definition 5's moving ratio).
* ``route_distance(...)`` / ``node_distance(...)`` - shortest-path
  distance along the directed network, the ``rndis`` used by the MAE /
  RMSE metrics (paper Eq. 20).  Single-source Dijkstra results are
  cached per source node, making repeated metric evaluation cheap.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from .geometry import Point, point_segment_distance, project_onto_segment

__all__ = ["RoadSegment", "RoadNetwork"]


@dataclass(frozen=True)
class RoadSegment:
    """A directed road segment ``e`` from ``start_node`` to ``end_node``."""

    segment_id: int
    start_node: int
    end_node: int
    start: Point
    end: Point

    @property
    def length(self) -> float:
        """Segment length ``dis(e.N1, e.N2)`` in metres."""
        return self.start.distance_to(self.end)

    def position_at(self, ratio: float) -> Point:
        """Point at moving ratio ``r`` along the segment (clamped to [0, 1])."""
        r = min(1.0, max(0.0, ratio))
        return Point(
            self.start.x + r * (self.end.x - self.start.x),
            self.start.y + r * (self.end.y - self.start.y),
        )

    def project(self, point: Point) -> tuple[Point, float, float]:
        """Project ``point`` onto the segment.

        Returns ``(matched_point, moving_ratio, distance)``.
        """
        projection, ratio = project_onto_segment(point, self.start, self.end)
        return projection, ratio, point.distance_to(projection)


class RoadNetwork:
    """A directed road graph with segment geometry.

    Parameters
    ----------
    nodes:
        Mapping of node id to planar :class:`Point`.
    segments:
        Directed segments; ``segment_id`` values must be exactly
        ``0..len(segments)-1`` (they double as classifier labels).
    """

    def __init__(self, nodes: dict[int, Point], segments: list[RoadSegment]):
        if not nodes:
            raise ValueError("road network needs at least one node")
        expected_ids = list(range(len(segments)))
        if [s.segment_id for s in segments] != expected_ids:
            raise ValueError("segment ids must be contiguous 0..n-1 in order")
        self.nodes = dict(nodes)
        self.segments = list(segments)
        self._out_edges: dict[int, list[RoadSegment]] = {n: [] for n in self.nodes}
        self._in_edges: dict[int, list[RoadSegment]] = {n: [] for n in self.nodes}
        for seg in segments:
            if seg.start_node not in self.nodes or seg.end_node not in self.nodes:
                raise KeyError(f"segment {seg.segment_id} references unknown node")
            self._out_edges[seg.start_node].append(seg)
            self._in_edges[seg.end_node].append(seg)
        self._sssp_cache: dict[int, dict[int, float]] = {}

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_segments(self) -> int:
        """Number of directed segments (the segment vocabulary size)."""
        return len(self.segments)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def segment(self, segment_id: int) -> RoadSegment:
        """Return the segment with the given id."""
        return self.segments[segment_id]

    def out_segments(self, node_id: int) -> list[RoadSegment]:
        """Directed segments leaving ``node_id``."""
        return self._out_edges[node_id]

    def in_segments(self, node_id: int) -> list[RoadSegment]:
        """Directed segments entering ``node_id``."""
        return self._in_edges[node_id]

    def successors(self, segment_id: int) -> list[RoadSegment]:
        """Segments that can directly follow ``segment_id`` on a route."""
        return self._out_edges[self.segments[segment_id].end_node]

    def position_at(self, segment_id: int, ratio: float) -> Point:
        """Planar point of the map-matched point ``(e, r)``."""
        return self.segments[segment_id].position_at(ratio)

    def bounding_box(self) -> tuple[float, float, float, float]:
        """Return ``(min_x, min_y, max_x, max_y)`` over all nodes."""
        xs = [p.x for p in self.nodes.values()]
        ys = [p.y for p in self.nodes.values()]
        return min(xs), min(ys), max(xs), max(ys)

    # ------------------------------------------------------------------
    # nearest-segment queries (linear scan; the map matcher uses the
    # grid index in repro.mapmatch for bulk work)
    # ------------------------------------------------------------------
    def segments_near(self, point: Point, radius: float) -> list[tuple[RoadSegment, float]]:
        """All segments within ``radius`` metres of ``point`` with distances."""
        found = []
        for seg in self.segments:
            d = point_segment_distance(point, seg.start, seg.end)
            if d <= radius:
                found.append((seg, d))
        found.sort(key=lambda pair: pair[1])
        return found

    def nearest_segment(self, point: Point) -> tuple[RoadSegment, float]:
        """The closest segment to ``point`` and its distance."""
        best = None
        best_d = math.inf
        for seg in self.segments:
            d = point_segment_distance(point, seg.start, seg.end)
            if d < best_d:
                best, best_d = seg, d
        assert best is not None
        return best, best_d

    # ------------------------------------------------------------------
    # shortest paths
    # ------------------------------------------------------------------
    def node_distance(self, source: int, target: int) -> float:
        """Directed shortest-path distance between nodes (inf if unreachable)."""
        if source == target:
            return 0.0
        distances = self._sssp_cache.get(source)
        if distances is None:
            distances = self._dijkstra(source)
            self._sssp_cache[source] = distances
        return distances.get(target, math.inf)

    def _dijkstra(self, source: int) -> dict[int, float]:
        distances = {source: 0.0}
        heap: list[tuple[float, int]] = [(0.0, source)]
        settled: set[int] = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            for seg in self._out_edges[node]:
                nd = d + seg.length
                if nd < distances.get(seg.end_node, math.inf):
                    distances[seg.end_node] = nd
                    heapq.heappush(heap, (nd, seg.end_node))
        return distances

    def route_distance(self, from_segment: int, from_ratio: float,
                       to_segment: int, to_ratio: float) -> float:
        """Directed travel distance between two map-matched points.

        This is the paper's ``rndis(g, g')``: distance travelled along
        the directed road network from point ``(e1, r1)`` to ``(e2, r2)``.
        """
        seg_a = self.segments[from_segment]
        seg_b = self.segments[to_segment]
        r1 = min(1.0, max(0.0, from_ratio))
        r2 = min(1.0, max(0.0, to_ratio))
        if from_segment == to_segment and r2 >= r1:
            return (r2 - r1) * seg_a.length
        # Leave segment A at its end node, route to B's start node, then
        # travel r2 along B.  Also consider simply continuing on A when B
        # follows A around a loop; Dijkstra covers that via node distance.
        head = (1.0 - r1) * seg_a.length
        tail = r2 * seg_b.length
        middle = self.node_distance(seg_a.end_node, seg_b.start_node)
        return head + middle + tail

    def symmetric_route_distance(self, seg_a: int, ratio_a: float,
                                 seg_b: int, ratio_b: float) -> float:
        """Paper Eq. 20: ``min(rndis(g, g'), rndis(g', g))``."""
        forward = self.route_distance(seg_a, ratio_a, seg_b, ratio_b)
        backward = self.route_distance(seg_b, ratio_b, seg_a, ratio_a)
        return min(forward, backward)

    def is_strongly_connected(self) -> bool:
        """Whether every node can reach every other node (sampled check
        is exact: one forward and one reverse Dijkstra from node 0)."""
        start = next(iter(self.nodes))
        forward = self._dijkstra(start)
        if len(forward) != len(self.nodes):
            return False
        reverse = self._reverse_dijkstra(start)
        return len(reverse) == len(self.nodes)

    def _reverse_dijkstra(self, source: int) -> dict[int, float]:
        distances = {source: 0.0}
        heap: list[tuple[float, int]] = [(0.0, source)]
        settled: set[int] = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            for seg in self._in_edges[node]:
                nd = d + seg.length
                if nd < distances.get(seg.start_node, math.inf):
                    distances[seg.start_node] = nd
                    heapq.heappush(heap, (nd, seg.start_node))
        return distances

    def clear_cache(self) -> None:
        """Drop cached shortest-path results (e.g. after mutation in tests)."""
        self._sssp_cache.clear()
