"""Grid-bucket spatial index over road segments.

The HMM map matcher, the constraint-mask layer, and the synthetic data
generator all need "segments within radius of a point" queries; a
uniform bucket grid makes them O(1)-ish instead of a linear scan over
the whole network.
"""

from __future__ import annotations

import math
from collections import defaultdict

from .geometry import Point, point_segment_distance
from .roadnet import RoadNetwork, RoadSegment

__all__ = ["SegmentIndex"]


class SegmentIndex:
    """Uniform-grid inverted index from buckets to road segments.

    Each segment is registered in every bucket its bounding box overlaps
    (inflated by nothing; query inflates by the search radius instead).

    Parameters
    ----------
    network:
        The road network to index.
    bucket_size:
        Bucket edge length in metres; defaults to 250 m which suits
        city-block-sized segments.
    """

    def __init__(self, network: RoadNetwork, bucket_size: float = 250.0):
        if bucket_size <= 0:
            raise ValueError("bucket_size must be positive")
        self.network = network
        self.bucket_size = bucket_size
        self._buckets: dict[tuple[int, int], list[RoadSegment]] = defaultdict(list)
        for seg in network.segments:
            for key in self._cover_keys(seg):
                self._buckets[key].append(seg)

    def _key(self, x: float, y: float) -> tuple[int, int]:
        return (int(math.floor(x / self.bucket_size)), int(math.floor(y / self.bucket_size)))

    def _cover_keys(self, seg: RoadSegment):
        x0, x1 = sorted((seg.start.x, seg.end.x))
        y0, y1 = sorted((seg.start.y, seg.end.y))
        kx0, ky0 = self._key(x0, y0)
        kx1, ky1 = self._key(x1, y1)
        for kx in range(kx0, kx1 + 1):
            for ky in range(ky0, ky1 + 1):
                yield (kx, ky)

    def query(self, point: Point, radius: float) -> list[tuple[RoadSegment, float]]:
        """Segments within ``radius`` of ``point``, sorted by distance.

        Returns ``(segment, distance)`` pairs.  Falls back to widening
        rings until at least one segment is found or the whole network
        has been scanned, so callers always get a candidate.
        """
        if radius <= 0:
            raise ValueError("radius must be positive")
        results = self._query_once(point, radius)
        widened = radius
        max_extent = self._max_extent(point)
        while not results and widened < max_extent:
            widened *= 2.0
            results = self._query_once(point, widened)
        return results

    def _query_once(self, point: Point, radius: float) -> list[tuple[RoadSegment, float]]:
        kx0, ky0 = self._key(point.x - radius, point.y - radius)
        kx1, ky1 = self._key(point.x + radius, point.y + radius)
        seen: set[int] = set()
        found: list[tuple[RoadSegment, float]] = []
        for kx in range(kx0, kx1 + 1):
            for ky in range(ky0, ky1 + 1):
                for seg in self._buckets.get((kx, ky), ()):
                    if seg.segment_id in seen:
                        continue
                    seen.add(seg.segment_id)
                    d = point_segment_distance(point, seg.start, seg.end)
                    if d <= radius:
                        found.append((seg, d))
        found.sort(key=lambda pair: pair[1])
        return found

    def _max_extent(self, point: Point) -> float:
        """A radius guaranteed to reach the whole network from ``point``."""
        min_x, min_y, max_x, max_y = self.network.bounding_box()
        span = max(max_x - min_x, max_y - min_y)
        # Distance from the query point to the farthest bbox corner.
        reach = max(
            math.hypot(point.x - cx, point.y - cy)
            for cx in (min_x, max_x)
            for cy in (min_y, max_y)
        )
        return 2.0 * max(span, reach) + self.bucket_size
