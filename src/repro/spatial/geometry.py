"""Planar geometry primitives for road networks and trajectories.

The repository works in a local planar frame (metres), which is the
standard simplification for city-scale trajectory work: raw WGS-84
latitude/longitude coordinates are converted once via an equirectangular
projection around a reference point (:func:`latlng_to_local`) and all
downstream computation is Euclidean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Point",
    "euclidean",
    "haversine_m",
    "latlng_to_local",
    "local_to_latlng",
    "project_onto_segment",
    "point_segment_distance",
    "EARTH_RADIUS_M",
]

EARTH_RADIUS_M = 6_371_000.0


@dataclass(frozen=True)
class Point:
    """A 2-D point in the local planar frame (metres)."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_array(self) -> np.ndarray:
        """Return ``[x, y]`` as a NumPy array."""
        return np.array([self.x, self.y], dtype=np.float64)


def euclidean(a: Point | tuple[float, float], b: Point | tuple[float, float]) -> float:
    """Euclidean distance between two points or ``(x, y)`` tuples."""
    ax, ay = (a.x, a.y) if isinstance(a, Point) else a
    bx, by = (b.x, b.y) if isinstance(b, Point) else b
    return math.hypot(ax - bx, ay - by)


def haversine_m(lat1: float, lng1: float, lat2: float, lng2: float) -> float:
    """Great-circle distance between two WGS-84 coordinates, in metres."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlmb = math.radians(lng2 - lng1)
    a = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2) ** 2
    return 2 * EARTH_RADIUS_M * math.asin(math.sqrt(a))


def latlng_to_local(lat: float, lng: float, ref_lat: float, ref_lng: float) -> Point:
    """Equirectangular projection of (lat, lng) around a reference point."""
    x = math.radians(lng - ref_lng) * EARTH_RADIUS_M * math.cos(math.radians(ref_lat))
    y = math.radians(lat - ref_lat) * EARTH_RADIUS_M
    return Point(x, y)


def local_to_latlng(point: Point, ref_lat: float, ref_lng: float) -> tuple[float, float]:
    """Inverse of :func:`latlng_to_local`."""
    lat = ref_lat + math.degrees(point.y / EARTH_RADIUS_M)
    lng = ref_lng + math.degrees(point.x / (EARTH_RADIUS_M * math.cos(math.radians(ref_lat))))
    return lat, lng


def project_onto_segment(p: Point, a: Point, b: Point) -> tuple[Point, float]:
    """Project ``p`` onto the line segment ``a -> b``.

    Returns ``(projection, ratio)`` where ``ratio`` is the paper's moving
    ratio: 0 at the start node ``a``, 1 at the end node ``b``, clamped to
    the segment (Definition 5).
    """
    ax, ay = a.x, a.y
    dx, dy = b.x - ax, b.y - ay
    length_sq = dx * dx + dy * dy
    if length_sq <= 0.0:
        return a, 0.0
    t = ((p.x - ax) * dx + (p.y - ay) * dy) / length_sq
    t = min(1.0, max(0.0, t))
    return Point(ax + t * dx, ay + t * dy), t


def point_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Distance from ``p`` to the segment ``a -> b``."""
    projection, _ = project_onto_segment(p, a, b)
    return p.distance_to(projection)
