"""Uniform grid discretisation of the plane.

LightTR's preprocessing converts GPS locations into discrete grid units
``g_i = (x_i, y_i, tid_i)`` (paper Eq. 4); this module owns the mapping
between continuous coordinates and flat grid-cell ids used as embedding
indices.
"""

from __future__ import annotations

from dataclasses import dataclass

from .geometry import Point

__all__ = ["Grid"]


@dataclass(frozen=True)
class Grid:
    """A uniform grid over a bounding box.

    Parameters
    ----------
    min_x, min_y, max_x, max_y:
        Bounding box in metres (inclusive of points on the boundary;
        outside points are clamped to the nearest cell).
    cell_size:
        Edge length of a square cell, in metres.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float
    cell_size: float

    def __post_init__(self):
        if self.cell_size <= 0:
            raise ValueError("cell_size must be positive")
        if self.max_x <= self.min_x or self.max_y <= self.min_y:
            raise ValueError("bounding box must have positive area")

    @property
    def num_cols(self) -> int:
        """Number of cells along x."""
        return max(1, int((self.max_x - self.min_x) // self.cell_size) + 1)

    @property
    def num_rows(self) -> int:
        """Number of cells along y."""
        return max(1, int((self.max_y - self.min_y) // self.cell_size) + 1)

    @property
    def num_cells(self) -> int:
        """Total cell count (the grid-embedding vocabulary size)."""
        return self.num_cols * self.num_rows

    def cell_of(self, point: Point) -> tuple[int, int]:
        """Return the ``(col, row)`` cell containing ``point`` (clamped)."""
        col = int((point.x - self.min_x) // self.cell_size)
        row = int((point.y - self.min_y) // self.cell_size)
        col = min(self.num_cols - 1, max(0, col))
        row = min(self.num_rows - 1, max(0, row))
        return col, row

    def cell_id(self, point: Point) -> int:
        """Return the flat cell id of ``point`` (row-major)."""
        col, row = self.cell_of(point)
        return row * self.num_cols + col

    def cell_center(self, cell_id: int) -> Point:
        """Return the centre of the cell with flat id ``cell_id``."""
        if not 0 <= cell_id < self.num_cells:
            raise IndexError(f"cell id {cell_id} out of range [0, {self.num_cells})")
        row, col = divmod(cell_id, self.num_cols)
        return Point(
            self.min_x + (col + 0.5) * self.cell_size,
            self.min_y + (row + 0.5) * self.cell_size,
        )

    @classmethod
    def covering(cls, points: list[Point], cell_size: float, margin: float = 0.0) -> "Grid":
        """Build the smallest grid covering ``points`` with optional margin."""
        if not points:
            raise ValueError("cannot build a grid over zero points")
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        return cls(
            min_x=min(xs) - margin,
            min_y=min(ys) - margin,
            max_x=max(xs) + margin,
            max_y=max(ys) + margin,
            cell_size=cell_size,
        )
