"""``repro.spatial`` - geometry, grids, road networks, spatial indexing."""

from .generators import grid_city, ring_city
from .geometry import (
    EARTH_RADIUS_M,
    Point,
    euclidean,
    haversine_m,
    latlng_to_local,
    local_to_latlng,
    point_segment_distance,
    project_onto_segment,
)
from .grid import Grid
from .index import SegmentIndex
from .roadnet import RoadNetwork, RoadSegment

__all__ = [
    "Point",
    "euclidean",
    "haversine_m",
    "latlng_to_local",
    "local_to_latlng",
    "project_onto_segment",
    "point_segment_distance",
    "EARTH_RADIUS_M",
    "Grid",
    "RoadNetwork",
    "RoadSegment",
    "SegmentIndex",
    "grid_city",
    "ring_city",
]
