"""LightTR reproduction: federated trajectory recovery (ICDE 2024).

Top-level convenience re-exports.  The heavy lifting lives in:

* :mod:`repro.nn` - NumPy autograd / neural network substrate.
* :mod:`repro.spatial` - road networks, geometry, grids.
* :mod:`repro.data` - trajectory types, synthetic datasets, partitioning.
* :mod:`repro.mapmatch` - HMM map matching.
* :mod:`repro.core` - the LightTR model (LTE + constraint mask +
  meta-knowledge distillation).
* :mod:`repro.federated` - client/server FedAvg orchestration.
* :mod:`repro.baselines` - FC+FL, RNN+FL, MTrajRec+FL, RNTrajRec+FL,
  centralized MTrajRec.
* :mod:`repro.metrics` - recall/precision, road-network MAE/RMSE,
  efficiency accounting.
* :mod:`repro.experiments` - the harness that regenerates every table
  and figure of the paper.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
