"""LightTR reproduction: federated trajectory recovery (ICDE 2024).

Top-level convenience re-exports.  The heavy lifting lives in:

* :mod:`repro.nn` - NumPy autograd / neural network substrate.
* :mod:`repro.spatial` - road networks, geometry, grids.
* :mod:`repro.data` - trajectory types, synthetic datasets, partitioning.
* :mod:`repro.mapmatch` - HMM map matching.
* :mod:`repro.core` - the LightTR model (LTE + constraint mask +
  meta-knowledge distillation).
* :mod:`repro.federated` - client/server FedAvg orchestration.
* :mod:`repro.baselines` - FC+FL, RNN+FL, MTrajRec+FL, RNTrajRec+FL,
  centralized MTrajRec.
* :mod:`repro.metrics` - recall/precision, road-network MAE/RMSE,
  efficiency accounting.
* :mod:`repro.experiments` - the harness that regenerates every table
  and figure of the paper.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]


def _tune_allocator() -> None:
    """Stop glibc from returning hot NumPy buffers to the kernel.

    The training hot path allocates and frees ~1 MB float64 arrays (the
    ``(B, T, S)`` masks/softmaxes) every batch.  By default glibc serves
    those via ``mmap``/``munmap``, so every allocation pays ~200 us of
    page faults to re-touch memory it just gave back.  Raising the mmap
    and trim thresholds keeps the pages in the process; this
    measured ~3x faster for a fresh-array elementwise pass.  Linux/glibc
    only; silently skipped elsewhere.  The settings are process-wide
    (up to ~64 MB of freed heap stays resident), so hosts embedding
    this package for non-training use can opt out by setting
    ``REPRO_MALLOC_TUNING=0`` before import.
    """
    import ctypes
    import os
    import sys

    if not sys.platform.startswith("linux"):
        return
    if os.environ.get("REPRO_MALLOC_TUNING", "1") == "0":
        return
    try:
        libc = ctypes.CDLL("libc.so.6")
        m_trim_threshold, m_top_pad, m_mmap_threshold = -1, -2, -3
        libc.mallopt(m_mmap_threshold, 64 * 1024 * 1024)
        libc.mallopt(m_trim_threshold, 64 * 1024 * 1024)
        libc.mallopt(m_top_pad, 16 * 1024 * 1024)
    except (OSError, AttributeError):  # non-glibc libc
        pass


_tune_allocator()
