"""Decode programs: per-model adapters the engine steps.

A program bundles everything one packed decode run needs — the raw
per-row decoder state, the per-row constants (auxiliary step features,
the constraint mask, encoder states), and the model's step math on raw
arrays — behind the protocol :class:`~repro.serving.DecodeSession`
drives (see that module's docstring).  Three programs cover every
autoregressive model in the repo, replacing what used to be three
near-duplicate per-model inference loops:

* :class:`STDecodeProgram` — LightTR's lightweight ST-operator
  (:class:`~repro.core.st_block.LightweightSTOperator`), consuming
  dense *or* CSR-sparse constraint masks;
* :class:`StackedRNNDecodeProgram` — the RNN+FL baseline's stacked
  Elman decoder with independent segment/ratio heads;
* :class:`AttnDecodeProgram` — the MTrajRec/RNTrajRec shape: additive
  attention over the encoder states feeding a GRU cell and the
  multi-task head (RNTrajRec differs only in the segment-embedding
  table it passes, the GCN-refined one).

Every step mirrors the corresponding tape path operation by operation
(same expressions, same association), so packed decode reproduces the
per-row bit patterns of the padded loops; all state is kept as raw
arrays and ``select_rows`` is a pure gather, which is what makes
active-row compaction cheap.

Mux protocol (live admission)
-----------------------------
On top of the stepping protocol every program implements the *mux*
extension :class:`~repro.serving.LiveDecodeSet` drives, which factors
``advance`` into a per-row-constants gather and a pure batched step so
rows from **different** programs (different requests, different padded
widths) can share one kernel pass:

``mux_key()``
    Hashable compatibility key.  Two programs may be joined iff their
    keys are equal: same program family, same owning model modules (by
    identity — one frozen model per live set), same per-row state
    geometry (e.g. the attention programs' encoder width ``To``), and
    the same mask representation.
``step_constants(rows, t)``
    The per-row constants ``advance`` would slice at ``(rows, t)`` —
    each entry gathers these at its *own* clock ``t``.
``join_constants(parts)`` / ``join_states(states)``
    Row-concatenate constants / states from mux-compatible programs.
``advance_on(state, constants, prev_segments, prev_ratios)``
    The batched step on pre-gathered constants; ``advance`` is
    literally ``advance_on(state, step_constants(rows, t), ...)``, so
    the joined step runs the exact expressions of every solo step and
    concat/split is bitwise-neutral (all step math is batched GEMM +
    row-local elementwise).
"""

from __future__ import annotations

import numpy as np

from ..nn.backend import call_kernel, ops
from ..nn.functional import row_dot

__all__ = ["STDecodeProgram", "StackedRNNDecodeProgram", "AttnDecodeProgram"]


def _sparse_mask_step_ref(log_mask, t: int, rows: np.ndarray):
    return log_mask.step(t, rows)


def _mask_step(log_mask, t: int, rows: np.ndarray):
    """Slice decode step ``t`` of the mask over the compacted ``rows``.

    Real CSR batch masks dispatch through the ``"sparse_mask_step"``
    hot kernel, so the workspace backend can substitute its
    per-working-set step plan (see :mod:`repro.core.mask`).
    """
    if isinstance(log_mask, np.ndarray):
        return log_mask[rows, t, :]
    if log_mask.identity or len(log_mask.shape) != 3:
        return log_mask.step(t, rows)
    return call_kernel("sparse_mask_step", _sparse_mask_step_ref,
                       log_mask, t, rows)


def _mask_kind(log_mask) -> tuple:
    """Mux-compatibility tag of a mask representation.

    Dense arrays, CSR sparse masks, and identity (disabled) masks step
    to different types, so only like-kinded masks can be joined.
    """
    if isinstance(log_mask, np.ndarray):
        return ("dense", log_mask.dtype.str)
    if log_mask.identity:
        return ("identity", log_mask.shape[-1])
    return ("sparse", float(log_mask.floor), log_mask.log_values.dtype.str,
            log_mask.shape[-1])


def _join_mask_parts(parts: list):
    """Row-concatenate per-entry mask steps (dense or duck-typed sparse)."""
    if len(parts) == 1:
        return parts[0]
    if isinstance(parts[0], np.ndarray):
        return ops.concatenate(parts)
    # Sparse step masks join through their own class (duck-typed so this
    # module never imports repro.core, which imports serving at load).
    return type(parts[0]).concat_rows(parts)


def _dense_log_softmax(masked: np.ndarray) -> np.ndarray:
    """Raw mirror of the tape ``log_softmax`` (same expressions,
    including the float64 normaliser accumulation)."""
    shifted = masked - masked.max(axis=-1, keepdims=True)
    shifted -= ops.log(ops.exp(shifted).sum(axis=-1, keepdims=True,
                                           dtype=np.float64))
    return shifted


def _relu(x: np.ndarray) -> np.ndarray:
    """Raw mirror of ``Tensor.relu`` (``x * (x > 0)``)."""
    return x * (x > 0)


class _State:
    """One working set's decoder state (arrays compacted in lockstep)."""

    __slots__ = ("arrays", "cache")

    def __init__(self, arrays: list[np.ndarray], cache: np.ndarray | None = None):
        self.arrays = arrays  # per-row state, gathered by select_rows
        self.cache = cache  # advance -> emit carry (not gathered)


class STDecodeProgram:
    """LTE decode: the ST-operator's compacted-state step kernels."""

    def __init__(self, operator, h0: np.ndarray, extras: np.ndarray,
                 log_mask):
        self.operator = operator
        self._h0 = h0  # (B, H) encoder state
        self._extras = extras  # (B, T, extra_inputs)
        self._mask = log_mask  # dense (B, T, S) or SparseConstraintMask
        self.num_rows = int(extras.shape[0])
        self.num_steps = int(extras.shape[1])
        self.num_classes = int(operator.num_segments)

    def initial_state(self) -> _State:
        return _State([self._h0 for _ in range(self.operator.num_blocks)])

    def select_rows(self, state: _State, keep: np.ndarray) -> _State:
        return _State([h[keep] for h in state.arrays])

    def mux_key(self) -> tuple:
        return ("st", id(self.operator), int(self._extras.shape[-1]),
                _mask_kind(self._mask))

    def step_constants(self, rows: np.ndarray, t: int) -> tuple:
        return (self._extras[rows, t], _mask_step(self._mask, t, rows))

    def join_constants(self, parts: list) -> tuple:
        return (ops.concatenate([p[0] for p in parts]),
                _join_mask_parts([p[1] for p in parts]))

    def join_states(self, states: list) -> _State:
        return _State([ops.concatenate(arrays)
                       for arrays in zip(*(s.arrays for s in states))])

    def advance_on(self, state: _State, constants: tuple,
                   prev_segments: np.ndarray, prev_ratios: np.ndarray
                   ) -> tuple[_State, np.ndarray]:
        extras, mask_t = constants
        states, h_d, log_probs = self.operator.step_advance(
            state.arrays, prev_segments, prev_ratios, extras, mask_t,
        )
        return _State(states, h_d), log_probs

    def advance(self, state: _State, rows: np.ndarray, t: int,
                prev_segments: np.ndarray, prev_ratios: np.ndarray
                ) -> tuple[_State, np.ndarray]:
        return self.advance_on(state, self.step_constants(rows, t),
                               prev_segments, prev_ratios)

    def emit(self, state: _State, segments: np.ndarray) -> np.ndarray:
        return self.operator.step_emit(state.cache, segments)


class StackedRNNDecodeProgram:
    """RNN+FL decode: stacked Elman cells, independent linear heads.

    The ratio head reads the top cell state directly (it does not
    depend on the emitted segment), so ratios are computed in
    ``advance`` and ``emit`` just returns them.
    """

    def __init__(self, seg_table: np.ndarray, cells, seg_head, ratio_head,
                 h0: np.ndarray, extras: np.ndarray, log_mask: np.ndarray):
        self._seg_table = seg_table  # (S, E) embedding rows
        self._cells = list(cells)
        self._seg_head = seg_head
        self._ratio_head = ratio_head
        self._h0 = h0
        self._extras = extras
        self._mask = log_mask
        self.num_rows = int(extras.shape[0])
        self.num_steps = int(extras.shape[1])
        self.num_classes = int(seg_head.out_features)

    def initial_state(self) -> _State:
        return _State([self._h0 for _ in self._cells])

    def select_rows(self, state: _State, keep: np.ndarray) -> _State:
        return _State([h[keep] for h in state.arrays])

    def mux_key(self) -> tuple:
        return ("rnn", id(self._seg_head), len(self._cells),
                int(self._extras.shape[-1]), _mask_kind(self._mask))

    def step_constants(self, rows: np.ndarray, t: int) -> tuple:
        return (self._extras[rows, t], _mask_step(self._mask, t, rows))

    def join_constants(self, parts: list) -> tuple:
        return (ops.concatenate([p[0] for p in parts]),
                _join_mask_parts([p[1] for p in parts]))

    def join_states(self, states: list) -> _State:
        return _State([ops.concatenate(arrays)
                       for arrays in zip(*(s.arrays for s in states))])

    def advance_on(self, state: _State, constants: tuple,
                   prev_segments: np.ndarray, prev_ratios: np.ndarray
                   ) -> tuple[_State, np.ndarray]:
        extras, mask_t = constants
        z = ops.concatenate(
            [self._seg_table[prev_segments], prev_ratios[:, None], extras],
            axis=-1,
        )
        states: list[np.ndarray] = []
        for cell, h in zip(self._cells, state.arrays):
            z = cell.step_array(z, h)
            states.append(z)
        logits = z @ self._seg_head.weight.data
        log_probs = _dense_log_softmax(logits + mask_t)
        ratios = _relu(row_dot(z, self._ratio_head.weight.data)
                       + self._ratio_head.bias.data)
        return _State(states, ratios), log_probs

    def advance(self, state: _State, rows: np.ndarray, t: int,
                prev_segments: np.ndarray, prev_ratios: np.ndarray
                ) -> tuple[_State, np.ndarray]:
        return self.advance_on(state, self.step_constants(rows, t),
                               prev_segments, prev_ratios)

    def emit(self, state: _State, segments: np.ndarray) -> np.ndarray:
        return state.cache


class AttnDecodeProgram:
    """MTrajRec/RNTrajRec decode: additive attention + GRU + MT head.

    ``seg_table`` is the raw segment-embedding table the decoder feeds
    back — the plain embedding weight for MTrajRec, the GCN-refined
    table for RNTrajRec (computed once per session; it is constant
    during decoding).  The attention key projection is hoisted out of
    the step loop (:meth:`AdditiveAttention.project_keys`).
    """

    def __init__(self, seg_table: np.ndarray, attention, cell, dense_d,
                 seg_head, emb_proj, ratio_head, h0: np.ndarray,
                 encoder_states: np.ndarray, obs_mask: np.ndarray,
                 extras: np.ndarray, log_mask: np.ndarray):
        self._seg_table = seg_table
        self._attention = attention
        self._cell = cell
        self._dense_d = dense_d
        self._seg_head = seg_head
        self._emb_proj = emb_proj
        self._ratio_head = ratio_head
        self._h0 = h0  # (B, H)
        self._keys = encoder_states  # (B, To, H)
        self._keys_proj = attention.project_keys(encoder_states)
        self._obs_mask = np.asarray(obs_mask, dtype=bool)
        self._extras = extras
        self._mask = log_mask
        self.num_rows = int(extras.shape[0])
        self.num_steps = int(extras.shape[1])
        self.num_classes = int(seg_head.out_features)

    def initial_state(self) -> _State:
        return _State([self._h0, self._keys, self._keys_proj, self._obs_mask])

    def select_rows(self, state: _State, keep: np.ndarray) -> _State:
        return _State([a[keep] for a in state.arrays])

    def mux_key(self) -> tuple:
        # ``To`` (the padded encoder width) is part of the key: the
        # per-row attention reductions run over a row's full key axis,
        # and zero-extending that axis is *not* bitwise-stable, so only
        # equal-width encoder states may share a working set.
        return ("attn", id(self._cell), int(self._keys.shape[1]),
                int(self._keys.shape[2]), int(self._extras.shape[-1]),
                _mask_kind(self._mask))

    def step_constants(self, rows: np.ndarray, t: int) -> tuple:
        return (self._extras[rows, t], _mask_step(self._mask, t, rows))

    def join_constants(self, parts: list) -> tuple:
        return (ops.concatenate([p[0] for p in parts]),
                _join_mask_parts([p[1] for p in parts]))

    def join_states(self, states: list) -> _State:
        return _State([ops.concatenate(arrays)
                       for arrays in zip(*(s.arrays for s in states))])

    def advance_on(self, state: _State, constants: tuple,
                   prev_segments: np.ndarray, prev_ratios: np.ndarray
                   ) -> tuple[_State, np.ndarray]:
        extras, mask_t = constants
        h, keys, keys_proj, obs_mask = state.arrays
        context = self._attention.step_array(h, keys, keys_proj, obs_mask)
        z = ops.concatenate(
            [self._seg_table[prev_segments], prev_ratios[:, None],
             extras, context], axis=-1,
        )
        h = self._cell.step_array(z, h)
        h_d = h @ self._dense_d.weight.data + self._dense_d.bias.data
        logits = h_d @ self._seg_head.weight.data
        log_probs = _dense_log_softmax(logits + mask_t)
        return _State([h, keys, keys_proj, obs_mask], h_d), log_probs

    def advance(self, state: _State, rows: np.ndarray, t: int,
                prev_segments: np.ndarray, prev_ratios: np.ndarray
                ) -> tuple[_State, np.ndarray]:
        return self.advance_on(state, self.step_constants(rows, t),
                               prev_segments, prev_ratios)

    def emit(self, state: _State, segments: np.ndarray) -> np.ndarray:
        seg_emb = self._seg_table[segments]
        h_e = _relu(state.cache + (seg_emb @ self._emb_proj.weight.data
                                   + self._emb_proj.bias.data))
        return _relu(
            row_dot(ops.concatenate([h_e, seg_emb], axis=-1),
                    self._ratio_head.weight.data)
            + self._ratio_head.bias.data
        )
