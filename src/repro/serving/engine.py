"""Batched variable-length decode engine (the serving hot path).

Autoregressive trajectory recovery steps a decoder once per output
timestep.  The padded decode paths step **every** batch row for
``max_length`` steps, so a batch of ragged-length trajectories pays for
``B * T_max`` row-steps even though only ``sum(T_i)`` carry signal.
:class:`DecodeSession` packs an arbitrary set of variable-length
trajectories into one batched stepping loop with **active-row
compaction**: rows whose trajectory is finished are dropped from the
working set at the step where they finish, every kernel in the step
(recurrent cells, heads, constraint-mask slicing, masked log-softmax)
runs over the compacted rows only, and the per-step outputs are
re-scattered into their original positions at the end.  Decode cost
then scales with the number of *unfinished* rows per step.

The engine is model-agnostic: it drives a **decode program** — an
adapter each recovery model builds via
:meth:`~repro.core.base.RecoveryModel.decode_program` — through a small
duck-typed protocol:

``num_rows`` / ``num_steps`` / ``num_classes``
    Working-set geometry (batch rows, max timesteps, vocabulary size).
``initial_state()``
    The per-row decoder state for all ``num_rows`` rows.  Must be safe
    to reuse across :meth:`DecodeSession.run` calls (the engine never
    mutates it; ``advance`` returns fresh state).
``select_rows(state, keep)``
    The state compacted to positions ``keep`` of the current working
    set (a pure gather).
``advance(state, rows, t, prev_segments, prev_ratios)``
    Advance one step over the compacted working set (``rows`` holds the
    original batch-row ids, for slicing per-row constants such as the
    constraint mask and auxiliary features) and return
    ``(next_state, log_probs)`` with ``log_probs`` of shape ``(A, S)``.
``emit(state, segments)``
    The moving ratios ``(A,)`` for the segments the emission policy
    chose.

Choosing the emitted segment is delegated to a pluggable
:class:`EmissionPolicy` (greedy argmax today; the split
``advance``/``emit`` protocol is exactly the seam a beam policy needs —
score all hypotheses, then emit ratios for the survivors).

Determinism contract
--------------------
Compaction only ever *removes* rows from the batched kernels; every
operation in a decode step is row-local, so the surviving rows compute
the same values they would inside the full batch.  Two BLAS caveats
are handled explicitly:

* single-output matmuls (``(M, K) @ (K, 1)`` — ratio heads, attention
  energies) dispatch to GEMV kernels whose accumulation blocking
  depends on ``M``, so the step kernels route them through the
  packing-stable :func:`repro.nn.row_dot` reduction instead;
* a single-row working set dispatches *every* matmul to GEMV, so when
  compaction would shrink a multi-row working set to exactly one row
  the engine carries one finished row along as inert ballast (its
  outputs are discarded) and the live row keeps its GEMM bit-pattern.

Packed output is therefore **bit-identical** to the padded full-length
engine decode on every valid timestep, for any working set of two or
more rows (any ``decode_batch >= 2``).  Working sets of one row
(``decode_batch=1``, or one-trajectory request batches) do run the
GEMV kernels: there, log-probabilities and ratios agree to 1e-10 and
argmax segments match everywhere the decision margin exceeds the ~1e-9
numerical noise — exactly-tied candidates (e.g. the two directed twins
of one road edge under an untrained model) may flip, after which the
autoregressive feedback legitimately diverges.  This is the same
tolerance class as the fused-kernel and sparse-mask contracts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.backend import ops
from ..nn.dtypes import get_compute_dtype

__all__ = ["EmissionPolicy", "GreedyEmission", "PackedDecodeResult",
           "DecodeSession"]


class EmissionPolicy:
    """Chooses the emitted segment per active row each decode step.

    ``select`` receives the masked log-probabilities ``(A, S)`` of the
    compacted working set and returns one segment id per row.  Policies
    are stateless with respect to the engine loop: richer policies
    (e.g. beam search) would subclass :class:`DecodeSession` to expand
    the working set per hypothesis, but reuse this same scoring seam —
    the engine already separates scoring (``advance``) from emission
    (``emit``), so a policy never has to re-run the decoder to change
    what is emitted.
    """

    def select(self, log_probs: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class GreedyEmission(EmissionPolicy):
    """Argmax emission — the paper's decode rule (Eq. 11)."""

    def select(self, log_probs: np.ndarray) -> np.ndarray:
        return ops.argmax(log_probs, axis=-1).astype(np.int64)


@dataclass(frozen=True)
class PackedDecodeResult:
    """Re-scattered outputs of one packed decode run.

    Rows beyond a trajectory's length hold zeros (they are padding —
    no consumer reads them); ``work_rows`` / ``dense_rows`` record how
    many row-steps the packed loop actually computed vs what a padded
    loop would have, so packing efficiency is observable.
    """

    log_probs: np.ndarray  # (B, T, S) float, zeros beyond each length
    ratios: np.ndarray  # (B, T) float, zeros beyond each length
    segments: np.ndarray  # (B, T) int64, zeros beyond each length
    work_rows: int  # row-steps computed (incl. BLAS-guard ballast)
    dense_rows: int  # row-steps a padded decode would compute


class DecodeSession:
    """Packs ragged-length decode requests into one compacted loop.

    Parameters
    ----------
    policy:
        The :class:`EmissionPolicy`; default greedy argmax.
    decode_batch:
        Maximum number of trajectories stepped together.  ``None``
        decodes the whole request set as one working set; a positive
        value bounds peak per-step memory (each chunk shares the
        program's initial state, so e.g. the encoder still runs once
        for the full batch).  For ``decode_batch >= 2`` a trailing
        one-row chunk is folded into its predecessor so every working
        set keeps the two-row bitwise contract; ``decode_batch=1``
        deliberately opts into one-row (GEMV-kernel) working sets.
    """

    def __init__(self, policy: EmissionPolicy | None = None,
                 decode_batch: int | None = None):
        if decode_batch is not None and decode_batch < 1:
            raise ValueError("decode_batch must be >= 1 (or None)")
        self.policy = policy if policy is not None else GreedyEmission()
        self.decode_batch = decode_batch

    def run(self, program, batch, lengths: np.ndarray | None = None
            ) -> PackedDecodeResult:
        """Decode every row of ``batch`` through ``program``.

        ``lengths`` gives each row's number of valid decode steps;
        ``None`` decodes every row for the full padded ``num_steps``
        (the padded reference behaviour — no compaction ever happens).
        """
        b, t = program.num_rows, program.num_steps
        if lengths is None:
            lengths = np.full(b, t, dtype=np.int64)
        else:
            lengths = np.asarray(lengths, dtype=np.int64)
            if lengths.shape != (b,):
                raise ValueError(
                    f"lengths shape {lengths.shape} does not match {b} rows")
            if lengths.max(initial=0) > t:
                raise ValueError("a length exceeds the program's num_steps")
        dtype = get_compute_dtype()
        log_probs = np.zeros((b, t, program.num_classes), dtype=dtype)
        ratios = np.zeros((b, t), dtype=dtype)
        segments = np.zeros((b, t), dtype=np.int64)

        state0 = program.initial_state()
        work = 0
        chunk = b if self.decode_batch is None else self.decode_batch
        starts = list(range(0, b, chunk))
        if chunk >= 2 and len(starts) > 1 and b - starts[-1] == 1:
            # A trailing one-row chunk would decode through GEMV kernels
            # (different bit patterns); fold it into its predecessor so
            # every working set honours the >= 2-row bitwise contract.
            starts.pop()
        for i, start in enumerate(starts):
            stop = starts[i + 1] if i + 1 < len(starts) else b
            rows = np.arange(start, stop, dtype=np.int64)
            work += self._run_rows(program, state0, batch, lengths, rows,
                                   log_probs, ratios, segments)
        return PackedDecodeResult(
            log_probs=log_probs, ratios=ratios, segments=segments,
            work_rows=work, dense_rows=b * t,
        )

    # ------------------------------------------------------------------
    # one working set
    # ------------------------------------------------------------------
    def _run_rows(self, program, state0, batch, lengths: np.ndarray,
                  rows: np.ndarray, log_probs: np.ndarray, ratios: np.ndarray,
                  segments: np.ndarray) -> int:
        if rows.size == program.num_rows:
            state = state0  # whole batch: reuse the program's state as-is
        else:
            state = program.select_rows(state0, rows)
        live = np.ones(rows.size, dtype=bool)
        prev_segments = batch.tgt_segments[rows, 0].copy()
        prev_ratios = batch.tgt_ratios[rows, 0].copy()
        horizon = int(lengths[rows].max(initial=0))
        work = 0
        for t in range(horizon):
            alive = live & (lengths[rows] > t)
            if not ops.array_equal(alive, live):  # a row just finished
                keep = ops.flatnonzero(alive)
                if keep.size == 0:
                    break
                if keep.size == 1 and rows.size >= 2:
                    # BLAS guard: a 1-row working set would hit GEMV
                    # kernels whose bit-patterns differ from GEMM; carry
                    # one finished row as ballast instead.
                    keep = ops.concatenate(
                        [keep, ops.flatnonzero(~alive)[:1]])
                rows = rows[keep]
                live = alive[keep]
                state = program.select_rows(state, keep)
                prev_segments = prev_segments[keep]
                prev_ratios = prev_ratios[keep]
            state, step_logs = program.advance(state, rows, t, prev_segments,
                                               prev_ratios)
            step_segments = self.policy.select(step_logs)
            step_ratios = program.emit(state, step_segments)
            work += rows.size

            out = rows[live]
            log_probs[out, t] = step_logs[live]
            segments[out, t] = step_segments[live]
            ratios[out, t] = step_ratios[live]

            # Autoregressive feedback: observed points are inputs, not
            # predictions — clamp them to their known values.
            observed = batch.observed_flags[rows, t]
            prev_segments = ops.where(observed, batch.tgt_segments[rows, t],
                                      step_segments)
            prev_ratios = ops.where(observed, batch.tgt_ratios[rows, t],
                                    ops.clip(step_ratios, 0.0, 1.0))
        return work
