"""Batched variable-length decode engine (the serving hot path).

Autoregressive trajectory recovery steps a decoder once per output
timestep.  The padded decode paths step **every** batch row for
``max_length`` steps, so a batch of ragged-length trajectories pays for
``B * T_max`` row-steps even though only ``sum(T_i)`` carry signal.
:class:`DecodeSession` packs an arbitrary set of variable-length
trajectories into one batched stepping loop with **active-row
compaction**: rows whose trajectory is finished are dropped from the
working set at the step where they finish, every kernel in the step
(recurrent cells, heads, constraint-mask slicing, masked log-softmax)
runs over the compacted rows only, and the per-step outputs are
re-scattered into their original positions at the end.  Decode cost
then scales with the number of *unfinished* rows per step.

The engine is model-agnostic: it drives a **decode program** — an
adapter each recovery model builds via
:meth:`~repro.core.base.RecoveryModel.decode_program` — through a small
duck-typed protocol:

``num_rows`` / ``num_steps`` / ``num_classes``
    Working-set geometry (batch rows, max timesteps, vocabulary size).
``initial_state()``
    The per-row decoder state for all ``num_rows`` rows.  Must be safe
    to reuse across :meth:`DecodeSession.run` calls (the engine never
    mutates it; ``advance`` returns fresh state).
``select_rows(state, keep)``
    The state compacted to positions ``keep`` of the current working
    set (a pure gather).
``advance(state, rows, t, prev_segments, prev_ratios)``
    Advance one step over the compacted working set (``rows`` holds the
    original batch-row ids, for slicing per-row constants such as the
    constraint mask and auxiliary features) and return
    ``(next_state, log_probs)`` with ``log_probs`` of shape ``(A, S)``.
``emit(state, segments)``
    The moving ratios ``(A,)`` for the segments the emission policy
    chose.

Choosing the emitted segment is delegated to a pluggable
:class:`EmissionPolicy` (greedy argmax today; the split
``advance``/``emit`` protocol is exactly the seam a beam policy needs —
score all hypotheses, then emit ratios for the survivors).

Determinism contract
--------------------
Compaction only ever *removes* rows from the batched kernels; every
operation in a decode step is row-local, so the surviving rows compute
the same values they would inside the full batch.  Two BLAS caveats
are handled explicitly:

* single-output matmuls (``(M, K) @ (K, 1)`` — ratio heads, attention
  energies) dispatch to GEMV kernels whose accumulation blocking
  depends on ``M``, so the step kernels route them through the
  packing-stable :func:`repro.nn.row_dot` reduction instead;
* a single-row working set dispatches *every* matmul to GEMV, so when
  compaction would shrink a multi-row working set to exactly one row
  the engine carries one finished row along as inert ballast (its
  outputs are discarded) and the live row keeps its GEMM bit-pattern.

Packed output is therefore **bit-identical** to the padded full-length
engine decode on every valid timestep, for any working set — including
one-row working sets (``decode_batch=1``, one-trajectory request
batches): a working set that *starts* at exactly one row carries a
duplicate of that row as inert **self-ballast**, so the live row runs
the same GEMM kernels (and therefore the same bit patterns) as inside
any larger packed batch.  Historically one-row sets ran GEMV kernels
and only promised argmax identity + 1e-10 values; the self-ballast
upgrade makes the one-row case bitwise too, which is what lets the
continuous-batching scheduler (:mod:`repro.serving.scheduler`) prove
solo-vs-batched *equality* rather than closeness.

Live admission
--------------
:meth:`DecodeSession.open` returns a :class:`LiveDecodeSet` — the
incremental dual of :meth:`DecodeSession.run`.  Where ``run`` packs a
fixed request set and retires rows as they finish, a live set *also*
accepts new rows mid-flight (:meth:`LiveDecodeSet.admit`) at step
boundaries, each admitted entry stepping on its own per-entry clock.
Admitted programs must be mutually *mux-compatible* (same program
class, same per-row state geometry, same mask kind — see
``mux_key`` in :mod:`repro.serving.programs`); every step the set
concatenates the entries' per-step constants and states, advances them
through one batched kernel call, and scatters the outputs back.
Because every step kernel is row-local and GEMM bit-patterns are
row-count independent (the two BLAS caveats above are already
handled), an admitted row computes exactly the bits of its solo
:func:`~repro.serving.api.decode_model` call, no matter what else
shares the working set or when it was admitted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.backend import ops
from ..nn.dtypes import get_compute_dtype

__all__ = ["EmissionPolicy", "GreedyEmission", "PackedDecodeResult",
           "DecodeSession", "LiveDecodeSet", "LiveDecodeResult", "MuxError"]


class EmissionPolicy:
    """Chooses the emitted segment per active row each decode step.

    ``select`` receives the masked log-probabilities ``(A, S)`` of the
    compacted working set and returns one segment id per row.  Policies
    are stateless with respect to the engine loop: richer policies
    (e.g. beam search) would subclass :class:`DecodeSession` to expand
    the working set per hypothesis, but reuse this same scoring seam —
    the engine already separates scoring (``advance``) from emission
    (``emit``), so a policy never has to re-run the decoder to change
    what is emitted.

    State extension seam
    --------------------
    A policy that keeps per-row state (a beam policy's per-row beam
    sets, a top-k sampler's per-row RNG lanes) tracks the working set
    through two hooks the engine calls at every membership change:
    :meth:`extend` when rows are admitted (appended at the end of the
    working set, in admission order) and :meth:`compact` when finished
    rows retire (``keep`` holds the surviving positions, in order).
    Both default to no-ops — greedy emission is stateless.  ``select``
    may additionally see **one trailing ballast row** beyond the
    tracked working set (the BLAS guard); its emission is discarded, so
    stateful policies should simply ignore positions past their tracked
    row count.
    """

    def select(self, log_probs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def extend(self, rows: int) -> None:
        """``rows`` new working-set rows were appended (admission)."""

    def compact(self, keep: np.ndarray) -> None:
        """The working set was compacted to positions ``keep``."""


class GreedyEmission(EmissionPolicy):
    """Argmax emission — the paper's decode rule (Eq. 11)."""

    def select(self, log_probs: np.ndarray) -> np.ndarray:
        return ops.argmax(log_probs, axis=-1).astype(np.int64)


@dataclass(frozen=True)
class PackedDecodeResult:
    """Re-scattered outputs of one packed decode run.

    Rows beyond a trajectory's length hold zeros (they are padding —
    no consumer reads them); ``work_rows`` / ``dense_rows`` record how
    many row-steps the packed loop actually computed vs what a padded
    loop would have, so packing efficiency is observable.
    """

    log_probs: np.ndarray  # (B, T, S) float, zeros beyond each length
    ratios: np.ndarray  # (B, T) float, zeros beyond each length
    segments: np.ndarray  # (B, T) int64, zeros beyond each length
    work_rows: int  # row-steps computed (incl. BLAS-guard ballast)
    dense_rows: int  # row-steps a padded decode would compute


class DecodeSession:
    """Packs ragged-length decode requests into one compacted loop.

    Parameters
    ----------
    policy:
        The :class:`EmissionPolicy`; default greedy argmax.
    decode_batch:
        Maximum number of trajectories stepped together.  ``None``
        decodes the whole request set as one working set; a positive
        value bounds peak per-step memory (each chunk shares the
        program's initial state, so e.g. the encoder still runs once
        for the full batch).  For ``decode_batch >= 2`` a trailing
        one-row chunk is folded into its predecessor so every working
        set keeps the two-row bitwise contract; ``decode_batch=1``
        working sets carry a duplicated-row self-ballast instead, which
        keeps them on the same GEMM kernels (and bits) as any larger
        working set at the cost of one extra computed row per step.
    """

    def __init__(self, policy: EmissionPolicy | None = None,
                 decode_batch: int | None = None):
        if decode_batch is not None and decode_batch < 1:
            raise ValueError("decode_batch must be >= 1 (or None)")
        self.policy = policy if policy is not None else GreedyEmission()
        self.decode_batch = decode_batch

    def open(self, max_batch: int | None = None) -> "LiveDecodeSet":
        """A live working set accepting mid-flight admission.

        The incremental dual of :meth:`run`: where ``run`` decodes a
        fixed request set to completion, the returned
        :class:`LiveDecodeSet` is stepped explicitly and admits new
        rows between steps, bounded by ``max_batch`` live rows.  The
        session's emission policy is shared with the live set.
        """
        if max_batch is not None and max_batch < 1:
            raise ValueError("max_batch must be >= 1 (or None)")
        return LiveDecodeSet(self.policy, max_batch=max_batch)

    def run(self, program, batch, lengths: np.ndarray | None = None
            ) -> PackedDecodeResult:
        """Decode every row of ``batch`` through ``program``.

        ``lengths`` gives each row's number of valid decode steps;
        ``None`` decodes every row for the full padded ``num_steps``
        (the padded reference behaviour — no compaction ever happens).
        """
        b, t = program.num_rows, program.num_steps
        if lengths is None:
            lengths = np.full(b, t, dtype=np.int64)
        else:
            lengths = np.asarray(lengths, dtype=np.int64)
            if lengths.shape != (b,):
                raise ValueError(
                    f"lengths shape {lengths.shape} does not match {b} rows")
            if lengths.max(initial=0) > t:
                raise ValueError("a length exceeds the program's num_steps")
        dtype = get_compute_dtype()
        log_probs = np.zeros((b, t, program.num_classes), dtype=dtype)
        ratios = np.zeros((b, t), dtype=dtype)
        segments = np.zeros((b, t), dtype=np.int64)

        state0 = program.initial_state()
        work = 0
        chunk = b if self.decode_batch is None else self.decode_batch
        starts = list(range(0, b, chunk))
        if chunk >= 2 and len(starts) > 1 and b - starts[-1] == 1:
            # A trailing one-row chunk would decode through GEMV kernels
            # (different bit patterns); fold it into its predecessor so
            # every working set honours the >= 2-row bitwise contract.
            starts.pop()
        for i, start in enumerate(starts):
            stop = starts[i + 1] if i + 1 < len(starts) else b
            rows = np.arange(start, stop, dtype=np.int64)
            work += self._run_rows(program, state0, batch, lengths, rows,
                                   log_probs, ratios, segments)
        return PackedDecodeResult(
            log_probs=log_probs, ratios=ratios, segments=segments,
            work_rows=work, dense_rows=b * t,
        )

    # ------------------------------------------------------------------
    # one working set
    # ------------------------------------------------------------------
    def _run_rows(self, program, state0, batch, lengths: np.ndarray,
                  rows: np.ndarray, log_probs: np.ndarray, ratios: np.ndarray,
                  segments: np.ndarray) -> int:
        if rows.size == 1:
            # Self-ballast: a one-row working set would dispatch every
            # matmul to GEMV kernels whose bit-patterns differ from the
            # GEMM ones that packed multi-row sets run.  Carrying an
            # inert duplicate of the row keeps the live row on the GEMM
            # kernels, making one-row decodes bit-identical to the same
            # row inside any packed working set.
            rows = ops.concatenate([rows, rows])
            state = program.select_rows(state0, rows)
            live = np.array([True, False])
        elif rows.size == program.num_rows:
            state = state0  # whole batch: reuse the program's state as-is
            live = np.ones(rows.size, dtype=bool)
        else:
            state = program.select_rows(state0, rows)
            live = np.ones(rows.size, dtype=bool)
        prev_segments = batch.tgt_segments[rows, 0].copy()
        prev_ratios = batch.tgt_ratios[rows, 0].copy()
        horizon = int(lengths[rows].max(initial=0))
        work = 0
        for t in range(horizon):
            alive = live & (lengths[rows] > t)
            if not ops.array_equal(alive, live):  # a row just finished
                keep = ops.flatnonzero(alive)
                if keep.size == 0:
                    break
                if keep.size == 1 and rows.size >= 2:
                    # BLAS guard: a 1-row working set would hit GEMV
                    # kernels whose bit-patterns differ from GEMM; carry
                    # one finished row as ballast instead.
                    keep = ops.concatenate(
                        [keep, ops.flatnonzero(~alive)[:1]])
                rows = rows[keep]
                live = alive[keep]
                state = program.select_rows(state, keep)
                prev_segments = prev_segments[keep]
                prev_ratios = prev_ratios[keep]
            state, step_logs = program.advance(state, rows, t, prev_segments,
                                               prev_ratios)
            step_segments = self.policy.select(step_logs)
            step_ratios = program.emit(state, step_segments)
            work += rows.size

            out = rows[live]
            log_probs[out, t] = step_logs[live]
            segments[out, t] = step_segments[live]
            ratios[out, t] = step_ratios[live]

            # Autoregressive feedback: observed points are inputs, not
            # predictions — clamp them to their known values.
            observed = batch.observed_flags[rows, t]
            prev_segments = ops.where(observed, batch.tgt_segments[rows, t],
                                      step_segments)
            prev_ratios = ops.where(observed, batch.tgt_ratios[rows, t],
                                    ops.clip(step_ratios, 0.0, 1.0))
        return work


class MuxError(ValueError):
    """A program cannot join the live working set (incompatible mux
    geometry, a different program family, or no admission protocol)."""


@dataclass(frozen=True)
class LiveDecodeResult:
    """One finished admission's re-scattered outputs.

    The live-set sibling of :class:`PackedDecodeResult`; ``work_rows``
    counts only this entry's own live row-steps — BLAS-guard ballast
    rows are **excluded**, so per-request cost accounting (decode
    FLOPs, packing ratios) never double-counts the guard.
    """

    handle: int  # the token admit() returned for this entry
    log_probs: np.ndarray  # (B, T, S), zeros beyond each length
    ratios: np.ndarray  # (B, T), zeros beyond each length
    segments: np.ndarray  # (B, T) int64, zeros beyond each length
    work_rows: int  # live row-steps computed for this entry (no ballast)
    dense_rows: int  # row-steps a padded decode of this entry would compute
    steps: int  # per-entry clock value when the last row retired


class _LiveEntry:
    """One admission's slice of the live working set (per-entry clock)."""

    __slots__ = ("handle", "program", "batch", "rows", "lengths", "t",
                 "state", "prev_segments", "prev_ratios", "log_probs",
                 "ratios", "segments", "work", "dense_rows")

    def __init__(self, handle, program, batch, rows, lengths, state,
                 prev_segments, prev_ratios, log_probs, ratios, segments,
                 dense_rows):
        self.handle = handle
        self.program = program
        self.batch = batch
        self.rows = rows  # original batch-row ids still decoding
        self.lengths = lengths  # aligned with ``rows``
        self.t = 0  # this entry's clock (steps already taken)
        self.state = state
        self.prev_segments = prev_segments
        self.prev_ratios = prev_ratios
        self.log_probs = log_probs
        self.ratios = ratios
        self.segments = segments
        self.work = 0
        self.dense_rows = dense_rows

    def result(self) -> LiveDecodeResult:
        return LiveDecodeResult(
            handle=self.handle, log_probs=self.log_probs, ratios=self.ratios,
            segments=self.segments, work_rows=self.work,
            dense_rows=self.dense_rows, steps=self.t)


class LiveDecodeSet:
    """A packed working set with mid-flight admission (the serving dual
    of per-step row retirement).

    Rows join through :meth:`admit` — at step boundaries only, which is
    the whole determinism story: between two :meth:`step` calls there
    is no kernel in flight, so admission is pure working-set
    bookkeeping (concatenating per-row state and constants), and the
    next batched step computes every row's values exactly as a solo
    decode of that row would (row-local kernels + row-count-stable
    GEMM/:func:`~repro.nn.row_dot` dispatch, see the module
    docstring).  Entries keep **per-entry clocks**: a request admitted
    at global step 40 runs its own steps 0..len-1, sliced from *its
    own* batch's constants, so its padded-width-dependent features are
    exactly its solo features.

    All admitted programs must be mux-compatible (equal ``mux_key()``);
    the first admission into an empty set fixes the key, and draining
    the set resets it.  ``max_batch`` bounds the number of *live* rows;
    the transient BLAS-guard ballast row (carried whenever the live
    total is exactly one) is compute-only and not part of the working
    set: it holds no request, emits nothing, and is excluded from every
    per-entry work counter.
    """

    def __init__(self, policy: EmissionPolicy, max_batch: int | None = None):
        self.policy = policy
        self.max_batch = max_batch
        self._entries: list[_LiveEntry] = []
        self._ready: list[LiveDecodeResult] = []
        self._mux_key = None
        self._next_handle = 0

    # -- introspection --------------------------------------------------
    @property
    def rows(self) -> int:
        """Live rows currently in the working set (ballast excluded)."""
        return sum(e.rows.size for e in self._entries)

    @property
    def free_rows(self) -> int | None:
        """Admission headroom under ``max_batch`` (None = unbounded)."""
        if self.max_batch is None:
            return None
        return max(0, self.max_batch - self.rows)

    @property
    def empty(self) -> bool:
        """True when nothing is decoding and no result is pending."""
        return not self._entries and not self._ready

    @property
    def entries(self) -> int:
        """Number of admissions currently decoding."""
        return len(self._entries)

    # -- admission ------------------------------------------------------
    def admit(self, program, batch, lengths: np.ndarray | None = None,
              rows: np.ndarray | None = None) -> int:
        """Admit ``rows`` of ``program`` (default: all) into the set.

        Returns an opaque handle identifying the admission; the matching
        :class:`LiveDecodeResult` comes out of a later :meth:`step`
        call.  Raises :class:`MuxError` when the program cannot share
        the current working set and ``ValueError`` when the admission
        would exceed ``max_batch``.
        """
        key = getattr(program, "mux_key", None)
        if key is None:
            raise MuxError(
                f"{type(program).__name__} has no mux_key(): it does not "
                f"implement the live-admission program protocol")
        key = program.mux_key()
        if self._entries and key != self._mux_key:
            raise MuxError(
                f"program is not mux-compatible with the live working set "
                f"(admitted {self._mux_key!r}, got {key!r})")
        b, t = program.num_rows, program.num_steps
        if rows is None:
            rows = np.arange(b, dtype=np.int64)
        else:
            rows = np.asarray(rows, dtype=np.int64)
        if lengths is None:
            lengths = np.full(b, t, dtype=np.int64)
        else:
            lengths = np.asarray(lengths, dtype=np.int64)
            if lengths.shape != (b,):
                raise ValueError(
                    f"lengths shape {lengths.shape} does not match {b} rows")
            if lengths.max(initial=0) > t:
                raise ValueError("a length exceeds the program's num_steps")
        if self.max_batch is not None \
                and self.rows + rows.size > self.max_batch:
            raise ValueError(
                f"admitting {rows.size} row(s) would exceed max_batch="
                f"{self.max_batch} (live rows: {self.rows})")
        handle = self._next_handle
        self._next_handle += 1
        dtype = get_compute_dtype()
        log_probs = np.zeros((b, t, program.num_classes), dtype=dtype)
        ratios = np.zeros((b, t), dtype=dtype)
        segments = np.zeros((b, t), dtype=np.int64)
        row_lengths = lengths[rows]
        alive = ops.flatnonzero(row_lengths > 0)
        if alive.size == 0:
            # Nothing to decode (all-zero lengths): finish immediately.
            self._ready.append(LiveDecodeResult(
                handle=handle, log_probs=log_probs, ratios=ratios,
                segments=segments, work_rows=0,
                dense_rows=rows.size * t, steps=0))
            return handle
        live_rows = rows[alive]
        entry = _LiveEntry(
            handle=handle, program=program, batch=batch, rows=live_rows,
            lengths=row_lengths[alive],
            state=program.select_rows(program.initial_state(), live_rows),
            prev_segments=batch.tgt_segments[live_rows, 0].copy(),
            prev_ratios=batch.tgt_ratios[live_rows, 0].copy(),
            log_probs=log_probs, ratios=ratios, segments=segments,
            dense_rows=rows.size * t)
        self._entries.append(entry)
        if self._mux_key is None:
            self._mux_key = key
        self.policy.extend(live_rows.size)
        return handle

    # -- stepping -------------------------------------------------------
    def step(self) -> list[LiveDecodeResult]:
        """Advance every live row one step; return finished admissions.

        One batched kernel pass over the concatenated working set (each
        entry's constants gathered at its own clock), then per-entry
        output scatter, feedback, and retirement of rows that reached
        their length.
        """
        results = self._ready
        self._ready = []
        entries = self._entries
        if not entries:
            return results
        template = entries[0].program
        states = [e.state for e in entries]
        constants = [e.program.step_constants(e.rows, e.t) for e in entries]
        prev_seg = [e.prev_segments for e in entries]
        prev_rat = [e.prev_ratios for e in entries]
        total = sum(e.rows.size for e in entries)
        if total == 1:
            # BLAS guard (see the module docstring): duplicate the sole
            # live row as inert trailing ballast so the step runs GEMM
            # kernels; its outputs are discarded below.
            sole = entries[0]
            states.append(sole.state)
            constants.append(sole.program.step_constants(sole.rows, sole.t))
            prev_seg.append(sole.prev_segments)
            prev_rat.append(sole.prev_ratios)
        state = template.join_states(states)
        joined = template.join_constants(constants)
        state, log_probs = template.advance_on(
            state, joined, ops.concatenate(prev_seg),
            ops.concatenate(prev_rat))
        step_segments = self.policy.select(log_probs)
        step_ratios = template.emit(state, step_segments)

        survivors: list[_LiveEntry] = []
        kept_positions: list[np.ndarray] = []
        retired = False
        offset = 0
        for entry in entries:
            n = entry.rows.size
            span = slice(offset, offset + n)
            rows, t = entry.rows, entry.t
            entry.log_probs[rows, t] = log_probs[span]
            entry.segments[rows, t] = step_segments[span]
            entry.ratios[rows, t] = step_ratios[span]
            entry.work += n
            # Autoregressive feedback: observed points are inputs, not
            # predictions — clamp them to their known values.
            observed = entry.batch.observed_flags[rows, t]
            entry.prev_segments = ops.where(
                observed, entry.batch.tgt_segments[rows, t],
                step_segments[span])
            entry.prev_ratios = ops.where(
                observed, entry.batch.tgt_ratios[rows, t],
                ops.clip(step_ratios[span], 0.0, 1.0))
            entry.state = template.select_rows(
                state, np.arange(offset, offset + n, dtype=np.int64))
            entry.t += 1
            keep = entry.lengths > entry.t
            if keep.all():
                kept_positions.append(
                    np.arange(offset, offset + n, dtype=np.int64))
            else:
                retired = True
                kept = ops.flatnonzero(keep)
                kept_positions.append(offset + kept)
                entry.rows = entry.rows[kept]
                entry.lengths = entry.lengths[kept]
                entry.state = template.select_rows(entry.state, kept)
                entry.prev_segments = entry.prev_segments[kept]
                entry.prev_ratios = entry.prev_ratios[kept]
            if entry.rows.size:
                survivors.append(entry)
            else:
                results.append(entry.result())
            offset += n
        self._entries = survivors
        if retired:
            self.policy.compact(ops.concatenate(kept_positions))
        if not survivors:
            self._mux_key = None  # drained: the next admit re-keys the set
        return results
