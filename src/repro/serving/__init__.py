"""Recovery serving layer: the batched variable-length decode engine.

``DecodeSession`` (:mod:`repro.serving.engine`) packs ragged-length
trajectories into one compacted stepping loop; decode programs
(:mod:`repro.serving.programs`) adapt each model's step math to it; and
:func:`decode_model` (:mod:`repro.serving.api`) is the entry point the
evaluation, recovery, and federated layers call.  See
``docs/PERFORMANCE.md`` for the knobs and determinism contract.
"""

from .api import batch_lengths, decode_model
from .engine import (
    DecodeSession,
    EmissionPolicy,
    GreedyEmission,
    PackedDecodeResult,
)
from .programs import AttnDecodeProgram, StackedRNNDecodeProgram, STDecodeProgram

__all__ = [
    "decode_model", "batch_lengths",
    "DecodeSession", "EmissionPolicy", "GreedyEmission", "PackedDecodeResult",
    "STDecodeProgram", "StackedRNNDecodeProgram", "AttnDecodeProgram",
]
