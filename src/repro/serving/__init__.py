"""Recovery serving layer: batched decode engine + continuous batching.

``DecodeSession`` (:mod:`repro.serving.engine`) packs ragged-length
trajectories into one compacted stepping loop, and its
:class:`LiveDecodeSet` admits new trajectories mid-flight; decode
programs (:mod:`repro.serving.programs`) adapt each model's step math
to it; :func:`decode_model` (:mod:`repro.serving.api`) is the entry
point the evaluation, recovery, and federated layers call; and the
serving stack — :class:`ContinuousBatcher`
(:mod:`repro.serving.scheduler`), :class:`DecodeService`
(:mod:`repro.serving.service`), and the optional FastAPI app
(:func:`create_app`) — turns the engine into a long-lived service.
See ``docs/PERFORMANCE.md`` for the engine knobs and determinism
contract and ``docs/SERVING.md`` for the service architecture.
"""

from .api import batch_lengths, create_app, decode_model, fastapi_available
from .engine import (
    DecodeSession,
    EmissionPolicy,
    GreedyEmission,
    LiveDecodeResult,
    LiveDecodeSet,
    MuxError,
    PackedDecodeResult,
)
from .programs import AttnDecodeProgram, StackedRNNDecodeProgram, STDecodeProgram
from .scheduler import (
    ContinuousBatcher,
    DeadlineExceededError,
    RequestError,
    ServedResult,
    ServingFlags,
)
from .service import DecodeService, QueueFullError, ServiceClosedError

__all__ = [
    "decode_model", "batch_lengths", "fastapi_available", "create_app",
    "DecodeSession", "EmissionPolicy", "GreedyEmission", "PackedDecodeResult",
    "LiveDecodeSet", "LiveDecodeResult", "MuxError",
    "STDecodeProgram", "StackedRNNDecodeProgram", "AttnDecodeProgram",
    "ContinuousBatcher", "ServingFlags", "ServedResult",
    "RequestError", "DeadlineExceededError",
    "DecodeService", "QueueFullError", "ServiceClosedError",
]
