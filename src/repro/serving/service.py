"""In-process async front-end over the continuous batcher.

:class:`DecodeService` wraps a :class:`~repro.serving.ContinuousBatcher`
in one worker thread and a submit/result future API — the
dependency-light core the optional HTTP app
(:func:`repro.serving.create_app`) mounts, and a deployable serving
loop on its own:

* :meth:`DecodeService.submit` enqueues a request from any thread and
  returns a handle; :meth:`DecodeService.result` blocks until that
  request finishes (or re-raises its rejection).  Execution flags are
  captured in the *caller's* thread (:class:`ServingFlags.capture`), so
  each request runs under the configuration of whoever submitted it,
  not whatever the worker happens to have ambient.
* **Backpressure**: submissions beyond ``max_queue`` pending requests
  raise :class:`QueueFullError` immediately — callers shed load at the
  door instead of growing an unbounded queue.  Per-request ``timeout``
  becomes a scheduler deadline: requests that cannot be admitted in
  time fail fast with
  :class:`~repro.serving.scheduler.DeadlineExceededError`.
* **Graceful drain/shutdown**: :meth:`drain` blocks until everything
  submitted so far has finished; :meth:`shutdown` stops intake and
  either drains (default) or abandons queued work, failing its futures
  with :class:`ServiceClosedError`.  The service is a context manager
  (``with DecodeService(model) as svc: ...`` drains on exit).

The worker serialises all batcher access under one lock, including the
decode step itself — a submitter may briefly wait out an in-flight
step.  That keeps the batcher single-threaded by construction; the
steps are short (one working-set kernel pass), and the lock is never
held while a *caller* blocks (``result``/``drain`` wait on the
condition with the lock released).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

from .scheduler import ContinuousBatcher, RequestError, ServingFlags

__all__ = ["DecodeService", "QueueFullError", "ServiceClosedError"]


class QueueFullError(RuntimeError):
    """Backpressure: the service's pending-request budget is exhausted."""


class ServiceClosedError(RuntimeError):
    """The service is shut down (or abandoned this queued request)."""


class DecodeService:
    """Threaded serving loop around one :class:`ContinuousBatcher`.

    Parameters mirror the batcher (``model``, ``max_batch``,
    ``policy``, ``clock``) plus the service knobs: ``max_queue`` bounds
    pending (submitted but unfinished) requests — the backpressure
    limit — and ``start`` can defer worker startup for tests that want
    to drive :meth:`ContinuousBatcher.step` manually.
    """

    def __init__(self, model, *, max_batch: int = 8, max_queue: int = 64,
                 policy=None, clock=time.monotonic):
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.max_queue = max_queue
        self._clock = clock
        self._batcher = ContinuousBatcher(model, max_batch=max_batch,
                                          policy=policy, clock=clock)
        self._cond = threading.Condition()
        self._futures: dict[int, Future] = {}
        self._closed = False
        self._abandon = False
        self._stats = {"submitted": 0, "completed": 0, "rejected": 0}
        self._worker = threading.Thread(target=self._run,
                                        name="decode-service", daemon=True)
        self._worker.start()

    # -- client API -----------------------------------------------------
    def submit(self, batch, log_mask, *, lengths=None,
               timeout: float | None = None) -> int:
        """Enqueue one request batch; returns its handle.

        ``timeout`` (seconds) bounds how long the request may wait for
        admission.  Raises :class:`QueueFullError` when ``max_queue``
        requests are already pending and :class:`ServiceClosedError`
        after :meth:`shutdown`.
        """
        flags = ServingFlags.capture()  # the caller's configuration
        deadline = None if timeout is None else self._clock() + timeout
        with self._cond:
            if self._closed:
                raise ServiceClosedError("service is shut down")
            if len(self._futures) >= self.max_queue:
                raise QueueFullError(
                    f"{len(self._futures)} requests pending "
                    f"(max_queue={self.max_queue})")
            handle = self._batcher.submit(batch, log_mask, lengths=lengths,
                                          deadline=deadline, flags=flags)
            self._futures[handle] = Future()
            self._stats["submitted"] += 1
            self._cond.notify_all()
            return handle

    def result(self, handle: int, timeout: float | None = None):
        """Block until request ``handle`` finishes; return its
        :class:`~repro.serving.ServedResult` or re-raise its rejection."""
        with self._cond:
            future = self._futures.get(handle)
        if future is None:
            raise KeyError(f"unknown or already-collected handle {handle}")
        try:
            return future.result(timeout=timeout)
        finally:
            with self._cond:
                if future.done():
                    self._futures.pop(handle, None)

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted request has an outcome.

        Returns False if ``timeout`` elapsed first."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._settled():
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(timeout=remaining)
        return True

    def shutdown(self, drain: bool = True,
                 timeout: float | None = None) -> None:
        """Stop intake; finish (default) or abandon outstanding work.

        With ``drain=False``, queued-but-unfinished requests fail with
        :class:`ServiceClosedError`.  Idempotent."""
        with self._cond:
            self._closed = True
            if not drain:
                self._abandon = True
            self._cond.notify_all()
        self._worker.join(timeout=timeout)

    def __enter__(self) -> "DecodeService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    @property
    def stats(self) -> dict:
        """Counters plus live queue/working-set depths."""
        with self._cond:
            return dict(self._stats,
                        pending=len(self._futures),
                        queue_depth=self._batcher.queue_depth,
                        live_rows=self._batcher.live_rows)

    # -- worker ---------------------------------------------------------
    def _settled(self) -> bool:
        """All submitted work has an outcome (caller holds the lock)."""
        return self._batcher.idle and all(
            f.done() for f in self._futures.values())

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._closed and self._batcher.idle:
                    self._cond.wait()
                if self._abandon or (self._closed and self._batcher.idle):
                    self._fail_outstanding()
                    return
                outcomes = self._batcher.step()
                for handle, outcome in outcomes:
                    future = self._futures.get(handle)
                    if future is None:  # result() already gave up on it
                        continue
                    if isinstance(outcome, RequestError):
                        self._stats["rejected"] += 1
                        future.set_exception(outcome)
                    else:
                        self._stats["completed"] += 1
                        future.set_result(outcome)
                if outcomes:
                    self._cond.notify_all()

    def _fail_outstanding(self) -> None:
        """Abandonment path: fail every unfinished future (lock held)."""
        for future in self._futures.values():
            if not future.done():
                self._stats["rejected"] += 1
                future.set_exception(ServiceClosedError(
                    "service shut down before this request ran"))
        self._cond.notify_all()
