"""Continuous-batching scheduler: a request queue over a live decode set.

:class:`ContinuousBatcher` is the serving control loop the ROADMAP's
heavy-traffic north star asks for: it owns one
:class:`~repro.serving.engine.DecodeSession` opened as a
:class:`~repro.serving.engine.LiveDecodeSet` and a FIFO request queue,
and interleaves **admission** with **stepping** — new trajectory
requests join the packed working set at step boundaries, filling rows
freed by retirement up to a ``max_batch`` budget, and each request's
result is returned the step its last row finishes.  Requests never
wait for a batch to assemble (the latency failure of static batching)
and the working set never idles rows on finished trajectories (the
throughput failure of padded decoding).

Correctness contract
--------------------
Every admitted request decodes **bit-identically** to a solo
:func:`~repro.serving.decode_model` call on the same request batch
under the same flags — proven by the property suite in
``tests/serving/test_continuous_batching.py``, not asserted.  The
engine's live set provides the kernel-level half of the contract (see
``repro/serving/engine.py``); the scheduler contributes the policy
half:

* **FIFO, head-of-line blocking admission.**  Requests are admitted in
  submission order, and a head request that does not currently fit —
  not enough free rows, a mux-incompatible program (e.g. a different
  attention encoder width), or different serving flags — *blocks* the
  queue rather than being overtaken.  Nothing can starve: the live set
  drains monotonically, an empty set accepts any program, and an empty
  queue-head admission unblocks everything behind it.
* **Per-request flag capture.**  Each request snapshots the process
  flags (:class:`ServingFlags`: backend, compute/exchange dtype,
  fused kernels, sparse masks, packed decode) at ``submit`` time, the
  request's program is built under those flags, and every step of a
  working set runs under the flags its residents were admitted with —
  the :class:`~repro.federated.runner.RoundTask` re-assertion idiom
  applied to serving.  Requests with different flags never share a
  working set.
* **Solo fallback.**  A model/flag combination with no decode program
  (e.g. LTE with fused kernels disabled, or the non-autoregressive FC
  baseline) cannot be muxed; such requests run as one-off solo
  :func:`~repro.serving.decode_model` calls at their admission turn,
  preserving FIFO order.

Deadlines are admission deadlines: a request whose deadline passes
while it is still queued is rejected with
:class:`DeadlineExceededError` and never touches the working set; once
admitted, a request always runs to completion (aborting a live row
would change its co-residents' compaction schedule for no benefit —
the work is already in flight).
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from .. import nn
from ..nn.flops import estimate_decode_flops
from .api import batch_lengths, decode_model
from .engine import DecodeSession, EmissionPolicy, MuxError

__all__ = ["ServingFlags", "ServedResult", "RequestError",
           "DeadlineExceededError", "ContinuousBatcher"]


@dataclass(frozen=True)
class ServingFlags:
    """One request's snapshot of the process-global execution flags.

    The serving twin of the :class:`~repro.federated.runner.RoundTask`
    flag fields: captured where the request originates, re-asserted
    around every kernel call made on its behalf, and restored after —
    so a long-lived service honours each caller's backend/dtype/fusion
    configuration even when callers differ.
    """

    fused_kernels: bool = True
    sparse_masks: bool = True
    packed_decode: bool = True
    exchange_dtype: str = "float64"
    compute_dtype: str = "float64"
    backend: str = "reference"

    @classmethod
    def capture(cls) -> "ServingFlags":
        """Snapshot the caller's ambient flags."""
        return cls(
            fused_kernels=nn.fused_kernels_enabled(),
            sparse_masks=nn.sparse_masks_enabled(),
            packed_decode=nn.packed_decode_enabled(),
            exchange_dtype=np.dtype(nn.get_default_dtype()).name,
            compute_dtype=np.dtype(nn.get_compute_dtype()).name,
            backend=nn.get_backend(),
        )

    @contextmanager
    def applied(self):
        """Assert these flags for a block, restoring the previous ones."""
        previous = (
            nn.set_fused_kernels(self.fused_kernels),
            nn.set_sparse_masks(self.sparse_masks),
            nn.set_packed_decode(self.packed_decode),
            nn.set_default_dtype(self.exchange_dtype),
            nn.set_compute_dtype(self.compute_dtype),
            nn.set_backend(self.backend),
        )
        try:
            yield
        finally:
            nn.set_fused_kernels(previous[0])
            nn.set_sparse_masks(previous[1])
            nn.set_packed_decode(previous[2])
            nn.set_default_dtype(previous[3])
            nn.set_compute_dtype(previous[4])
            nn.set_backend(previous[5])


class RequestError(RuntimeError):
    """Base class for per-request serving failures."""


class DeadlineExceededError(RequestError):
    """The request's deadline passed before it could be admitted."""


@dataclass(frozen=True)
class ServedResult:
    """One finished request's outputs plus its cost accounting."""

    handle: int
    segments: np.ndarray  # (B, T) int64, zeros beyond each row's length
    ratios: np.ndarray  # (B, T), zeros beyond each row's length
    log_probs: np.ndarray  # (B, T, S), zeros beyond each row's length
    work_rows: int  # live row-steps computed for this request (no ballast)
    dense_rows: int  # row-steps a padded decode would have computed
    steps: int  # engine steps between this request's admission and finish
    decode_flops: float  # analytic decode cost (true lengths, padded encoder)
    solo_fallback: bool = False  # decoded outside the live set (no program)


class _Request:
    __slots__ = ("handle", "batch", "log_mask", "lengths", "deadline",
                 "flags", "program", "program_built")

    def __init__(self, handle, batch, log_mask, lengths, deadline, flags):
        self.handle = handle
        self.batch = batch
        self.log_mask = log_mask
        self.lengths = lengths
        self.deadline = deadline
        self.flags = flags
        self.program = None
        self.program_built = False


class ContinuousBatcher:
    """FIFO continuous-batching loop over one frozen model.

    Parameters
    ----------
    model:
        The recovery model to serve.  Its weights must not change while
        the batcher holds live requests (mux compatibility pins module
        identity, and co-resident rows share one kernel pass).
    max_batch:
        Working-set row budget — the latency/throughput knob.  Requests
        larger than this are rejected at ``submit``.
    policy:
        Emission-policy override for the owned session (default greedy).
    clock:
        Time source for deadlines (injectable for tests); defaults to
        :func:`time.monotonic`.

    Not thread-safe: callers (e.g. :class:`~repro.serving.DecodeService`)
    serialise access.
    """

    def __init__(self, model, *, max_batch: int = 8,
                 policy: EmissionPolicy | None = None, clock=time.monotonic):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.model = model
        self.max_batch = max_batch
        self._clock = clock
        self._live = DecodeSession(policy=policy).open(max_batch=max_batch)
        self._live_flags: ServingFlags | None = None
        self._queue: deque[_Request] = deque()
        self._by_live_handle: dict[int, _Request] = {}
        self._next_handle = 0
        #: Request handles in the order they entered a working set (or
        #: ran their solo fallback) — the FIFO-admission audit trail.
        self.admission_log: list[int] = []

    # -- introspection --------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests submitted but not yet admitted."""
        return len(self._queue)

    @property
    def live_rows(self) -> int:
        """Rows currently decoding in the working set."""
        return self._live.rows

    @property
    def idle(self) -> bool:
        """True when there is nothing queued and nothing decoding."""
        return not self._queue and self._live.empty

    # -- submission -----------------------------------------------------
    def submit(self, batch, log_mask, *, lengths: np.ndarray | None = None,
               deadline: float | None = None,
               flags: ServingFlags | None = None) -> int:
        """Queue one request batch; returns its handle.

        ``lengths`` defaults to the batch's ``tgt_mask`` row sums;
        ``deadline`` is an absolute :attr:`clock` value by which the
        request must have been *admitted*; ``flags`` default to a
        snapshot of the caller's ambient flags.
        """
        rows = int(batch.size)
        if rows > self.max_batch:
            raise ValueError(
                f"request has {rows} rows but max_batch={self.max_batch}; "
                f"split the batch before submitting")
        if lengths is None:
            lengths = batch_lengths(batch)
        else:
            lengths = np.asarray(lengths, dtype=np.int64)
        if flags is None:
            flags = ServingFlags.capture()
        handle = self._next_handle
        self._next_handle += 1
        self._queue.append(
            _Request(handle, batch, log_mask, lengths, deadline, flags))
        return handle

    # -- the serving loop -----------------------------------------------
    def step(self) -> list[tuple[int, ServedResult | RequestError]]:
        """One scheduler turn: expire, admit, advance.

        Returns ``(handle, outcome)`` pairs for every request that
        finished (a :class:`ServedResult`) or was rejected (a
        :class:`RequestError`) this turn.
        """
        outcomes: list[tuple[int, ServedResult | RequestError]] = []
        self._expire_queued(outcomes)
        self._admit(outcomes)
        if not self._live.empty:
            with self._live_flags.applied(), nn.no_grad():
                finished = self._live.step()
            for live_result in finished:
                request = self._by_live_handle.pop(live_result.handle)
                outcomes.append((request.handle,
                                 self._to_served(request, live_result)))
            if self._live.empty:
                self._live_flags = None
        return outcomes

    def drain(self) -> list[tuple[int, ServedResult | RequestError]]:
        """Step until the queue and the working set are both empty."""
        outcomes: list[tuple[int, ServedResult | RequestError]] = []
        while not self.idle:
            outcomes.extend(self.step())
        return outcomes

    # -- internals ------------------------------------------------------
    def _expire_queued(self, outcomes) -> None:
        """Reject queued requests whose deadline has passed.

        Expired requests are removed *before* admission, so they never
        touch (or poison) the packed working set."""
        if not any(r.deadline is not None for r in self._queue):
            return
        now = self._clock()
        kept: deque[_Request] = deque()
        for request in self._queue:
            if request.deadline is not None and now > request.deadline:
                outcomes.append((request.handle, DeadlineExceededError(
                    f"request {request.handle} missed its deadline "
                    f"({now - request.deadline:.3f}s late) while queued "
                    f"(queue depth {len(self._queue)}, "
                    f"live rows {self._live.rows})")))
            else:
                kept.append(request)
        self._queue = kept

    def _admit(self, outcomes) -> None:
        """Admit queued requests in FIFO order until the head blocks."""
        while self._queue:
            head = self._queue[0]
            if self._live_flags is not None and head.flags != self._live_flags:
                return  # wait for the set to drain, then re-key the flags
            if not head.program_built:
                with head.flags.applied(), nn.no_grad():
                    head.program = (
                        self.model.decode_program(head.batch, head.log_mask)
                        if head.flags.packed_decode else None)
                head.program_built = True
            if head.program is None:
                # No decode program under these flags: serve solo at the
                # request's admission turn, preserving FIFO order.
                self._queue.popleft()
                self.admission_log.append(head.handle)
                outcomes.append((head.handle, self._solo(head)))
                continue
            if int(head.batch.size) > self._free_rows():
                return  # head-of-line: wait for retirement to free rows
            try:
                live_handle = self._live.admit(head.program, head.batch,
                                               lengths=head.lengths)
            except MuxError:
                return  # incompatible with residents: wait for drain
            self._queue.popleft()
            self.admission_log.append(head.handle)
            self._by_live_handle[live_handle] = head
            if self._live_flags is None:
                self._live_flags = head.flags

    def _free_rows(self) -> int:
        free = self._live.free_rows
        return self.max_batch if free is None else free

    def _solo(self, request: _Request) -> ServedResult:
        with request.flags.applied():
            output = decode_model(self.model, request.batch, request.log_mask)
        steps = int(request.batch.steps)
        return ServedResult(
            handle=request.handle,
            segments=output.segments,
            ratios=np.asarray(output.ratios.data),
            log_probs=np.asarray(output.log_probs.data),
            work_rows=int(request.batch.size) * steps,
            dense_rows=int(request.batch.size) * steps,
            steps=steps,
            decode_flops=self._flops(request),
            solo_fallback=True)

    def _to_served(self, request: _Request, live_result) -> ServedResult:
        return ServedResult(
            handle=request.handle,
            segments=live_result.segments,
            ratios=live_result.ratios,
            log_probs=live_result.log_probs,
            work_rows=live_result.work_rows,
            dense_rows=live_result.dense_rows,
            steps=live_result.steps,
            decode_flops=self._flops(request))

    def _flops(self, request: _Request) -> float:
        """Analytic decode cost: padded encoder, true per-row lengths."""
        seq_len = int(request.batch.steps)
        return sum(
            estimate_decode_flops(self.model, seq_len, decode_len=int(n))
            for n in request.lengths)
