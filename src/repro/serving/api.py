"""One entry point for every recovery-inference call site.

:func:`decode_model` is how the rest of the repo runs autoregressive
recovery: :meth:`TrajectoryRecovery.predict_batch`,
:func:`~repro.metrics.evaluation.evaluate_model`, and the federated
loop's accuracy gates (:func:`~repro.core.training.model_segment_accuracy`)
all route through it instead of calling ``model(batch, log_mask,
teacher_forcing=False)`` directly.  When packed decode is enabled
(:func:`repro.nn.use_packed_decode`, default on) and the model builds a
decode program, inference runs through the
:class:`~repro.serving.engine.DecodeSession` engine with each row
decoded only to its true length; otherwise it falls back to the model's
own padded full-length decode, so models without a program (e.g. the
non-autoregressive FC baseline) keep working unchanged.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .engine import DecodeSession, EmissionPolicy

__all__ = ["decode_model", "batch_lengths"]


def batch_lengths(batch) -> np.ndarray:
    """Per-row valid decode lengths of a padded batch (``tgt_mask`` row
    sums; valid steps are a prefix by the collation contract)."""
    return batch.tgt_mask.sum(axis=1).astype(np.int64)


def decode_model(model, batch, log_mask, *, decode_batch: int | None = None,
                 policy: EmissionPolicy | None = None):
    """Autoregressive recovery inference through the shared engine.

    Parameters
    ----------
    model:
        Any :class:`~repro.core.base.RecoveryModel`.  Callers are
        expected to have put it in eval mode; gradients are disabled
        here.
    batch:
        The padded :class:`~repro.data.dataset.Batch`.
    log_mask:
        Constraint mask — dense array or
        :class:`~repro.core.mask.SparseConstraintMask`, typically from
        :meth:`ConstraintMaskBuilder.build_for`.
    decode_batch:
        Maximum trajectories stepped together per working set (``None``
        = all at once); the serving-side memory/latency knob.
    policy:
        Emission policy override (default greedy).

    Returns a :class:`~repro.core.base.ModelOutput`.  Valid timesteps
    match the padded engine decode bit-for-bit for any
    ``decode_batch >= 2`` (see the engine's determinism contract for
    the one-row caveat); steps beyond a row's length are zero-filled —
    consumers never read them.
    """
    from ..core.base import ModelOutput  # core imports serving at load time

    with nn.no_grad():
        program = (model.decode_program(batch, log_mask)
                   if nn.packed_decode_enabled() else None)
        if program is None:
            return model(batch, log_mask, teacher_forcing=False)
        session = DecodeSession(policy=policy, decode_batch=decode_batch)
        result = session.run(program, batch, lengths=batch_lengths(batch))
    return ModelOutput(log_probs=nn.Tensor(result.log_probs),
                       ratios=nn.Tensor(result.ratios),
                       segments=result.segments)
