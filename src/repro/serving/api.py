"""One entry point for every recovery-inference call site.

:func:`decode_model` is how the rest of the repo runs autoregressive
recovery: :meth:`TrajectoryRecovery.predict_batch`,
:func:`~repro.metrics.evaluation.evaluate_model`, and the federated
loop's accuracy gates (:func:`~repro.core.training.model_segment_accuracy`)
all route through it instead of calling ``model(batch, log_mask,
teacher_forcing=False)`` directly.  When packed decode is enabled
(:func:`repro.nn.use_packed_decode`, default on) and the model builds a
decode program, inference runs through the
:class:`~repro.serving.engine.DecodeSession` engine with each row
decoded only to its true length; otherwise it falls back to the model's
own padded full-length decode, so models without a program (e.g. the
non-autoregressive FC baseline) keep working unchanged.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .engine import DecodeSession, EmissionPolicy

__all__ = ["decode_model", "batch_lengths", "fastapi_available", "create_app"]


def batch_lengths(batch) -> np.ndarray:
    """Per-row valid decode lengths of a padded batch (``tgt_mask`` row
    sums; valid steps are a prefix by the collation contract)."""
    return batch.tgt_mask.sum(axis=1).astype(np.int64)


def decode_model(model, batch, log_mask, *, decode_batch: int | None = None,
                 policy: EmissionPolicy | None = None):
    """Autoregressive recovery inference through the shared engine.

    Parameters
    ----------
    model:
        Any :class:`~repro.core.base.RecoveryModel`.  Callers are
        expected to have put it in eval mode; gradients are disabled
        here.
    batch:
        The padded :class:`~repro.data.dataset.Batch`.
    log_mask:
        Constraint mask — dense array or
        :class:`~repro.core.mask.SparseConstraintMask`, typically from
        :meth:`ConstraintMaskBuilder.build_for`.
    decode_batch:
        Maximum trajectories stepped together per working set (``None``
        = all at once); the serving-side memory/latency knob.
    policy:
        Emission policy override (default greedy).

    Returns a :class:`~repro.core.base.ModelOutput`.  Valid timesteps
    match the padded engine decode bit-for-bit for any
    ``decode_batch >= 2`` (see the engine's determinism contract for
    the one-row caveat); steps beyond a row's length are zero-filled —
    consumers never read them.
    """
    from ..core.base import ModelOutput  # core imports serving at load time

    with nn.no_grad():
        program = (model.decode_program(batch, log_mask)
                   if nn.packed_decode_enabled() else None)
        if program is None:
            return model(batch, log_mask, teacher_forcing=False)
        session = DecodeSession(policy=policy, decode_batch=decode_batch)
        result = session.run(program, batch, lengths=batch_lengths(batch))
    return ModelOutput(log_probs=nn.Tensor(result.log_probs),
                       ratios=nn.Tensor(result.ratios),
                       segments=result.segments)


def fastapi_available() -> bool:
    """True when :mod:`fastapi` is importable.

    The HTTP front-end is gated exactly like the numba array backend
    (see :func:`repro.nn.backend._init_numba_backend`): FastAPI is an
    optional accelerator of the same tier, never a hard dependency —
    tier-1 runs hermetically with it absent, and the in-process
    :class:`~repro.serving.DecodeService` carries the full contract.
    """
    try:
        import fastapi  # noqa: F401
    except ImportError:
        return False
    return True


def create_app(service, prepare):
    """Build the optional FastAPI app over a :class:`DecodeService`.

    Parameters
    ----------
    service:
        A running :class:`~repro.serving.DecodeService`.
    prepare:
        ``prepare(payload) -> (batch, log_mask)`` — maps one POSTed
        JSON payload to a model batch and its constraint mask.  Batch
        construction is deployment-specific (road network, grid, and
        mask builder live server-side), so the app takes it as a
        callable instead of guessing a wire format.

    Routes: ``GET /healthz`` (liveness + :attr:`DecodeService.stats`)
    and ``POST /decode`` (body forwarded to ``prepare``; optional
    ``timeout`` key becomes the request's admission deadline).  Queue
    backpressure maps to HTTP 503, a missed deadline to 504.

    Raises :class:`RuntimeError` when FastAPI is not installed —
    callers gate on :func:`fastapi_available`.
    """
    if not fastapi_available():
        raise RuntimeError(
            "fastapi is not installed; the HTTP front-end is optional — "
            "use repro.serving.DecodeService in-process instead")
    from fastapi import FastAPI, HTTPException

    # Deferred: api is imported by the scheduler, so the service/
    # scheduler modules can only be imported lazily from here.
    from .scheduler import DeadlineExceededError
    from .service import QueueFullError, ServiceClosedError

    app = FastAPI(title="trajectory-recovery", docs_url=None, redoc_url=None)

    @app.get("/healthz")
    def healthz() -> dict:
        return {"status": "ok", **service.stats}

    @app.post("/decode")
    def decode(payload: dict) -> dict:
        batch, log_mask = prepare(payload)
        timeout = payload.get("timeout")
        try:
            handle = service.submit(batch, log_mask, timeout=timeout)
        except QueueFullError as error:
            raise HTTPException(status_code=503, detail=str(error))
        except ServiceClosedError as error:
            raise HTTPException(status_code=503, detail=str(error))
        try:
            result = service.result(handle)
        except DeadlineExceededError as error:
            raise HTTPException(status_code=504, detail=str(error))
        return {
            "handle": result.handle,
            "segments": result.segments.tolist(),
            "ratios": result.ratios.tolist(),
            "steps": result.steps,
            "work_rows": result.work_rows,
            "decode_flops": result.decode_flops,
        }

    return app
