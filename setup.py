"""Setuptools configuration.

This environment is offline and has no ``wheel`` package, so PEP 660
editable installs cannot build; keeping the metadata here lets
``pip install -e .`` fall back to the classic ``setup.py develop``
path.  The long description is the top-level ``README.md``.
"""

import os

from setuptools import find_packages, setup

_HERE = os.path.dirname(os.path.abspath(__file__))

with open(os.path.join(_HERE, "README.md"), encoding="utf-8") as handle:
    LONG_DESCRIPTION = handle.read()

setup(
    name="lighttr-repro",
    version="1.0.0",
    description=("NumPy-only reproduction of LightTR: a lightweight "
                 "framework for federated trajectory recovery (ICDE 2024)"),
    long_description=LONG_DESCRIPTION,
    long_description_content_type="text/markdown",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=["numpy"],
)
