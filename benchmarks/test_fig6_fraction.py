"""Figure 6 - effect of client fractions (keep ratio 12.5%).

LightTR samples {20%, 50%, 80%, 100%} of clients each round; the paper
finds all metrics improve as the fraction grows (more training data
participates per round).
"""

from __future__ import annotations

from repro.experiments import format_table, run_fraction_sweep

from conftest import publish

FRACTIONS = (0.2, 0.5, 0.8, 1.0)


def test_fig6_client_fraction(benchmark, context):
    runs = benchmark.pedantic(
        lambda: run_fraction_sweep(context, fractions=FRACTIONS),
        rounds=1, iterations=1,
    )
    publish("fig6_fraction",
            format_table(runs, title="Figure 6: effect of client fractions"))

    for dataset in ("geolife", "tdrive"):
        rows = [r for r in runs if r.dataset == dataset]
        # Shape: full participation is not notably worse than 20%.
        assert rows[-1].metrics.recall >= rows[0].metrics.recall - 0.08
        # And full participation lands within noise of the best fraction.
        best = max(rows, key=lambda r: r.metrics.recall)
        assert rows[-1].metrics.recall >= best.metrics.recall - 0.05
