"""Figure 9 - case study: recovered points vs ground truth on T-Drive.

Trains LightTR, RNN+FL and RNTrajRec+FL, recovers one test trajectory,
and renders the ground truth / observed / predicted points as an ASCII
scatter (the paper's map plots).  The quantitative check: LightTR's
mean recovery error is finite and no worse than RNN+FL by a wide
margin.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import ascii_scatter, run_case_study

from conftest import publish

METHODS = ("LightTR", "RNN+FL", "RNTrajRec+FL")


def _mean_error(pred, truth):
    return float(np.mean(np.linalg.norm(pred - truth, axis=1)))


def test_fig9_case_study(benchmark, context):
    result = benchmark.pedantic(
        lambda: run_case_study(context, methods=METHODS),
        rounds=1, iterations=1,
    )
    truth = result["ground_truth"]
    blocks = []
    errors = {}
    for method in METHODS:
        pred = result["predictions"][method]
        errors[method] = _mean_error(pred, truth)
        blocks.append(ascii_scatter(
            {"truth": truth, "observed": result["observed"], "xpred": pred},
            title=f"Figure 9 [{method}]  mean err={errors[method]:.0f} m",
        ))
    publish("fig9_case_study", "\n\n".join(blocks))

    for method in METHODS:
        pred = result["predictions"][method]
        assert pred.shape == truth.shape
        assert np.isfinite(pred).all()
    # Shape: LightTR traces the route at least as faithfully as RNN+FL
    # (the paper's Figure 9c shows RNN+FL drifting badly).
    assert errors["LightTR"] <= errors["RNN+FL"] * 1.5
