"""Communication-scaling benchmark: quantised exchange + async rounds.

Three measurements, all written to ``results/comm_scaling.*.txt`` and
merged into ``BENCH_hotpath.json`` under ``comm_scaling``:

* **bytes-per-round ladder** — the measured wire cost of one federated
  round at 10 / 100 / 1000 simulated clients for each exchange codec
  (real encodes of the model's flat parameter vector; broadcast +
  upload, full payload accounting including scale metadata and framing).
* **accuracy-vs-rounds codec ladder** — the same synchronous federation
  trained under ``identity`` (float64 reference), ``float32``, ``int8``
  (error feedback) and ``int8-nofb``.  The acceptance gates: int8+EF
  shrinks bytes by >= 3.5x vs float32 while drifting final accuracy
  <= 0.005 from the float64 reference.
* **sync-vs-async under stragglers** — the same budget run with the
  synchronous barrier vs FedBuff-style buffered aggregation beneath a
  straggler-heavy latency model.  The gates: every wave completes with
  no wall-clock stall (the virtual delays are never slept), and the
  serial and process-pool async histories are bit-identical.

Marked ``slow``: tier-1 (`pytest -x -q`) skips it; run with

    pytest -m slow benchmarks/test_comm_scaling.py -s
"""

from __future__ import annotations

import multiprocessing
import time

import numpy as np
import pytest

from repro.core import ConstraintMaskBuilder, RecoveryModelConfig
from repro.core.lte import LTEModel
from repro.core.training import TrainingConfig
from repro.data import TrajectoryDataset, geolife_like
from repro.federated import (
    FederatedConfig,
    FederatedTrainer,
    build_federation,
    codec_by_name,
    payload_num_bytes,
)
from repro.nn.flatten import FlatParameterSpace

from conftest import publish, update_bench

pytestmark = pytest.mark.slow

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

CODECS = ("identity", "float32", "int8", "int8-nofb")
CLIENT_COUNTS = (10, 100, 1000)
LADDER_CLIENTS = 8
LADDER_ROUNDS = 4
SHRINK_GATE = 3.5  # int8 vs float32 bytes, at least
DRIFT_GATE = 0.005  # int8+EF final accuracy vs float64 sync, at most
STRAGGLER_LATENCY = "base=1,jitter=2,heavy=0.3,heavy_factor=50,seed=17"


def _ladder_world():
    # 12 x 16 trajectories: the pooled test split carries ~576 evaluation
    # points, so one flipped prediction moves accuracy by ~0.002 — well
    # below the 0.005 drift gate this benchmark asserts.
    world = geolife_like(num_drivers=12, trajectories_per_driver=16,
                         points_per_trajectory=33, seed=7)
    dataset = TrajectoryDataset.from_matched(world.matched, world.grid,
                                             world.network, keep_ratio=0.25)
    config = RecoveryModelConfig(
        num_cells=dataset.num_cells, num_segments=dataset.num_segments,
        cell_emb_dim=16, seg_emb_dim=16, hidden_size=48,
        num_st_blocks=2, dropout=0.0, bbox=world.network.bounding_box(),
    )
    return world, config


def _payload_bytes_per_codec(flat: np.ndarray) -> dict[str, int]:
    """Measured single-payload wire size per codec (real encodes)."""
    sizes = {}
    for name in CODECS:
        payload = codec_by_name(name).encode(flat)
        sizes[name] = payload_num_bytes(payload)
    return sizes


def _bytes_per_round_table(flat: np.ndarray) -> list[dict]:
    """One round = broadcast to every client + one upload from each."""
    per_payload = _payload_bytes_per_codec(flat)
    rows = []
    for num_clients in CLIENT_COUNTS:
        row = {"clients": num_clients}
        for name, size in per_payload.items():
            row[name] = 2 * size * num_clients
        rows.append(row)
    return rows


def _run_codec_ladder():
    """Train the same federation once per codec; collect accuracy curves
    and measured ledger traffic."""
    world, config = _ladder_world()
    clients, global_test = build_federation(world, num_clients=LADDER_CLIENTS,
                                            keep_ratio=0.25)
    mask_builder = ConstraintMaskBuilder(world.network, radius=500.0)

    ladder = {}
    for name in CODECS:
        fed_config = FederatedConfig(
            rounds=LADDER_ROUNDS, local_epochs=1, use_meta=False,
            exchange_codec=name, training=TrainingConfig(batch_size=16),
        )
        trainer = FederatedTrainer(
            lambda: LTEModel(config, np.random.default_rng(5)),
            clients, mask_builder, fed_config, global_test, seed=0,
        )
        result = trainer.run()
        ladder[name] = {
            "accuracy_per_round": [r.global_accuracy for r in result.history],
            "final_accuracy": result.history[-1].global_accuracy,
            "bytes_per_round": result.ledger.bytes_per_round(),
            "total_bytes": result.ledger.total_bytes,
        }
    return ladder


def _run_sync_vs_async():
    """The same budget with and without the barrier, under a
    straggler-heavy latency model + deferred-straggler fault plan."""
    world, config = _ladder_world()
    clients, global_test = build_federation(world, num_clients=LADDER_CLIENTS,
                                            keep_ratio=0.25)
    mask_builder = ConstraintMaskBuilder(world.network, radius=500.0)

    def run(workers: int = 0, **knobs):
        fed_config = FederatedConfig(
            rounds=LADDER_ROUNDS, local_epochs=1, use_meta=False,
            training=TrainingConfig(batch_size=16), **knobs,
        )
        trainer = FederatedTrainer(
            lambda: LTEModel(config, np.random.default_rng(5)),
            clients, mask_builder, fed_config, global_test, seed=0,
            workers=workers,
        )
        start = time.perf_counter()
        result = trainer.run()
        elapsed = time.perf_counter() - start
        return trainer, result, elapsed

    async_knobs = dict(
        async_buffer=4, staleness_alpha=0.5, clients_per_round=0.75,
        latency=STRAGGLER_LATENCY, exchange_codec="int8",
        fault_plan="straggler=0.5,delay=30,seed=3",
    )
    _, sync_result, sync_seconds = run(exchange_codec="int8")
    async_trainer, async_result, async_seconds = run(**async_knobs)

    payload = {
        "rounds": LADDER_ROUNDS,
        "clients": LADDER_CLIENTS,
        "latency": STRAGGLER_LATENCY,
        "sync_final_accuracy": sync_result.history[-1].global_accuracy,
        "async_final_accuracy": async_result.history[-1].global_accuracy,
        "async_flushes": sum(r.flushes for r in async_result.history),
        "async_mean_staleness": float(np.mean(
            [r.mean_staleness for r in async_result.history])),
        "async_virtual_seconds": async_trainer._async.virtual_now,
        "sync_wall_seconds": sync_seconds,
        "async_wall_seconds": async_seconds,
        "fork": HAVE_FORK,
    }

    # No barrier stall: every wave completed, at least one flush landed,
    # and the ~30-virtual-second straggler delays were never slept.
    assert len(async_result.history) == LADDER_ROUNDS
    assert payload["async_flushes"] >= 1
    assert async_trainer._async.virtual_now > 10.0
    assert async_seconds < 25.0, \
        f"async run stalled {async_seconds:.1f}s on virtual delays"

    if HAVE_FORK:
        _, pooled_result, _ = run(workers=4, **async_knobs)
        payload["pool_matches_serial"] = (
            pooled_result.history == async_result.history)
        assert payload["pool_matches_serial"], \
            "pool async history diverged from serial under the same schedule"
    return payload


def test_comm_scaling(context):
    world, config = _ladder_world()
    flat = FlatParameterSpace.from_module(
        LTEModel(config, np.random.default_rng(5))).get_flat(dtype=np.float64)
    per_payload = _payload_bytes_per_codec(flat)
    byte_rows = _bytes_per_round_table(flat)
    ladder = _run_codec_ladder()
    sync_vs_async = _run_sync_vs_async()

    shrink = per_payload["float32"] / per_payload["int8"]
    drift = abs(ladder["int8"]["final_accuracy"]
                - ladder["identity"]["final_accuracy"])

    lines = [f"Communication scaling ({flat.size} parameters per payload)",
             "",
             "bytes per round (broadcast + uploads, full payload accounting):",
             "clients  " + "  ".join(f"{name:>10}" for name in CODECS)]
    for row in byte_rows:
        lines.append(f"{row['clients']:>7}  "
                     + "  ".join(f"{row[name]:>10,}" for name in CODECS))
    lines.append("")
    lines.append("accuracy vs rounds (sync, 8 clients x 4 rounds):")
    for name in CODECS:
        curve = "  ".join(f"{a:.4f}"
                          for a in ladder[name]["accuracy_per_round"])
        lines.append(f"{name:>10}: {curve}  "
                     f"({ladder[name]['bytes_per_round']:,.0f} B/round)")
    lines.append("")
    lines.append(f"int8 vs float32 shrink: {shrink:.2f}x (gate >= {SHRINK_GATE}x)")
    lines.append(f"int8+EF accuracy drift vs float64: {drift:.4f} "
                 f"(gate <= {DRIFT_GATE})")
    lines.append(f"async vs sync final accuracy: "
                 f"{sync_vs_async['async_final_accuracy']:.4f} vs "
                 f"{sync_vs_async['sync_final_accuracy']:.4f}; "
                 f"{sync_vs_async['async_flushes']} flushes, "
                 f"mean staleness {sync_vs_async['async_mean_staleness']:.2f}")
    if "pool_matches_serial" in sync_vs_async:
        lines.append(f"pool async == serial async: "
                     f"{sync_vs_async['pool_matches_serial']}")
    publish("comm_scaling", "\n".join(lines))
    update_bench({"comm_scaling": {
        "num_parameters": int(flat.size),
        "payload_bytes": per_payload,
        "bytes_per_round": byte_rows,
        "codec_ladder": ladder,
        "int8_vs_float32_shrink": shrink,
        "int8_accuracy_drift": drift,
        "sync_vs_async": sync_vs_async,
    }})

    # The acceptance gates.
    assert shrink >= SHRINK_GATE, \
        f"int8 shrinks only {shrink:.2f}x vs float32"
    assert drift <= DRIFT_GATE, \
        f"int8+EF drifted {drift:.4f} from the float64 reference"
    # Quantisation must actually reduce recorded traffic end to end.
    assert (ladder["int8"]["total_bytes"]
            < ladder["float32"]["total_bytes"] / SHRINK_GATE)
    assert (ladder["float32"]["total_bytes"]
            < ladder["identity"]["total_bytes"])
