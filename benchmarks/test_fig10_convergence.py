"""Companion figure - training convergence curves.

The paper's repository hosts a convergence plot showing LightTR
converging faster than the baselines thanks to the meta-knowledge
module (~100 epochs vs ~160 for MTrajRec+FL).  We record per-round
global test accuracy for three methods and check LightTR both improves
over training and ends at least on par with the baselines.
"""

from __future__ import annotations

from repro.experiments import format_curves, run_convergence

from conftest import publish

METHODS = ("RNN+FL", "MTrajRec+FL", "LightTR")


def test_fig10_convergence(benchmark, context):
    curves = benchmark.pedantic(
        lambda: run_convergence(context, methods=METHODS),
        rounds=1, iterations=1,
    )
    publish("fig10_convergence",
            format_curves(curves, title="Convergence: global accuracy per round"))

    light = curves["LightTR"]
    assert len(light) == context.scale.rounds
    # LightTR learns: final accuracy is above its first-round accuracy.
    assert light[-1] >= light[0] - 0.02
    # And ends within reach of the best baseline's final accuracy.
    best_final = max(curves[m][-1] for m in ("RNN+FL", "MTrajRec+FL"))
    assert light[-1] >= best_final - 0.08
