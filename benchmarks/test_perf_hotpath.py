"""Hot-path timing benchmark: fused kernels vs the per-step tape path.

Times the four layers the fused/vectorized refactors target —

* encoder forward + backward (one fused GRU scan vs T per-step cells),
* one local training epoch (fused teacher-forced decode, batched
  constraint-mask build, flat-buffer Adam),
* one full federated round (flat-vector broadcast/upload/aggregate),
  serial vs the process-pool round runner (``workers=4``) on a
  multi-client world,
* constraint-mask build + masked log-softmax, dense vs CSR-sparse,
  across growing segment vocabularies (the sparse win scales with
  vocabulary size as density falls),
* autoregressive recovery decode over a ragged-length workload, the
  padded full-length loop vs the packed ``DecodeSession`` engine
  (active-row compaction: decode cost tracks the live rows per step,
  so the win is the padding fraction of the workload),
* the compute-dtype substrate: the identical epoch / decode /
  federated-round workloads at float32 vs float64 kernels
  (``nn.use_compute_dtype``), with the measured segment-accuracy and
  log-probability drift recorded next to the speedups,
* the array-backend seam: the ``call_kernel`` dispatch overhead (gated
  < 2%) and the workspace backend's buffer-reusing kernels vs the
  reference on the epoch and packed-decode hot paths (``numba`` legs
  recorded only when that backend registered),

and writes the measurements (plus a ``meta`` provenance block: backend,
numpy/BLAS, cpu count, compute dtype) to ``BENCH_hotpath.json`` at the
repo root
so future PRs can track the speed trajectory.  The parallel speedup
assertion only fires on machines with >= 4 usable cores (the pool
cannot beat serial on a single-core container); ``cpus`` is recorded
alongside the numbers so the JSON is interpretable either way.

The baseline epoch leg reconstructs the *pre-PR* hot path faithfully:
per-step tape kernels (``use_fused_kernels(False)``), the per-point
``ConstraintMaskBuilder.build_reference`` double loop, and a
per-parameter-tensor Adam/clip loop.  Marked ``slow``: tier-1
(`pytest -x -q`) skips it; run with

    pytest -m slow benchmarks/test_perf_hotpath.py -s
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import numpy as np
import pytest

from repro import nn
from repro.core import ConstraintMaskBuilder, RecoveryModelConfig
from repro.core.lte import LTEModel
from repro.core.training import TrainingConfig
from repro.data import TrajectoryDataset, geolife_like
from repro.data.trajectory import MatchedTrajectory
from repro.federated import FederatedConfig, FederatedTrainer, build_federation
from repro.nn.tensor import Tensor
from repro.serving import decode_model
from repro.spatial import grid_city

from conftest import update_bench

pytestmark = pytest.mark.slow

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_hotpath.json")

HIDDEN = 48
EMB = 16
BATCH = 16
REPEATS = 9


def _best_of(fn, repeats: int = REPEATS) -> float:
    """Minimum wall-clock seconds over ``repeats`` calls."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _world():
    world = geolife_like(num_drivers=12, trajectories_per_driver=8,
                         points_per_trajectory=33, seed=7)
    dataset = TrajectoryDataset.from_matched(world.matched, world.grid,
                                             world.network, keep_ratio=0.25)
    return world, dataset


def _model_config(world, dataset) -> RecoveryModelConfig:
    return RecoveryModelConfig(
        num_cells=dataset.num_cells, num_segments=dataset.num_segments,
        cell_emb_dim=EMB, seg_emb_dim=EMB, hidden_size=HIDDEN,
        num_st_blocks=2, dropout=0.0, bbox=world.network.bounding_box(),
    )


# ----------------------------------------------------------------------
# pre-PR reference pieces (what the seed tree did before this refactor)
# ----------------------------------------------------------------------
class _ReferenceMaskBuilder(ConstraintMaskBuilder):
    """Builds batch masks with the original per-point double loop."""

    def build(self, batch):
        return self.build_reference(batch)


def _reference_clip_grad_norm(parameters, max_norm: float) -> float:
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g * g).sum()) for g in grads)))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for p in parameters:
            if p.grad is not None:
                p.grad = p.grad * scale
    return total


class _ReferenceAdam:
    """The seed tree's per-parameter-tensor Adam loop."""

    def __init__(self, parameters, lr=1e-3, betas=(0.9, 0.999), eps=1e-8):
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def zero_grad(self):
        for p in self.parameters:
            p.zero_grad()

    def step(self):
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            p.data = p.data - self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)


def _run_epoch(model, dataset, mask_builder, optimizer, clip, rng):
    """One training epoch with pluggable mask/optimizer (both legs)."""
    config = TrainingConfig(batch_size=BATCH)
    model.train()
    for batch in dataset.batches(config.batch_size, rng=rng):
        log_mask = mask_builder.build(batch)
        optimizer.zero_grad()
        output = model(batch, log_mask, teacher_forcing=True)
        loss, _ = model.loss(output, batch, mu=config.mu)
        loss.backward()
        clip(model.parameters(), config.grad_clip)
        optimizer.step()


def _time_encoder() -> dict:
    rng = np.random.default_rng(0)
    gru = nn.GRU(EMB + 2, HIDDEN, np.random.default_rng(1))
    x_data = rng.standard_normal((64, 33, EMB + 2))

    def run():
        x = Tensor(x_data, requires_grad=True)
        gru.zero_grad()
        _, last = gru(x)
        last.sum().backward()

    timings = {}
    for label, fused in (("fused", True), ("stepwise", False)):
        with nn.use_fused_kernels(fused):
            run()  # warm up
            timings[label] = _best_of(run)
    timings["speedup"] = timings["stepwise"] / timings["fused"]
    return timings


def _time_epoch() -> dict:
    world, dataset = _world()
    config = _model_config(world, dataset)
    timings = {}

    # Fused leg: current defaults (fused kernels, vectorized mask build,
    # flat-buffer Adam + clip).
    model = LTEModel(config, np.random.default_rng(3))
    mask_builder = ConstraintMaskBuilder(world.network, radius=500.0)
    optimizer = nn.Adam(model.parameters(), lr=1e-3)
    rng = np.random.default_rng(4)
    run = lambda: _run_epoch(model, dataset, mask_builder, optimizer,
                             nn.clip_grad_norm, rng)
    with nn.use_fused_kernels(True):
        run()  # warm caches
        timings["fused"] = _best_of(run)

    # Baseline leg: the pre-PR hot path (per-step tape kernels,
    # per-point mask build, per-tensor Adam/clip loops, uncached
    # per-example collation).
    model = LTEModel(config, np.random.default_rng(3))
    mask_builder = _ReferenceMaskBuilder(world.network, radius=500.0)
    optimizer = _ReferenceAdam(model.parameters(), lr=1e-3)
    rng = np.random.default_rng(4)

    def run_baseline():
        # Pre-PR behaviour recollated + re-featurised every epoch.
        dataset._obs_feat_cache.clear()
        dataset.clear_batch_cache()
        _run_epoch(model, dataset, mask_builder, optimizer,
                   _reference_clip_grad_norm, rng)

    with nn.use_fused_kernels(False):
        run_baseline()
        timings["stepwise_pre_pr"] = _best_of(run_baseline)

    timings["speedup"] = timings["stepwise_pre_pr"] / timings["fused"]
    return timings


SPARSE_GRID_SIZES = (16, 28, 40)  # grid_city sizes: S ~ 1k / 3k / 6.4k
SPARSE_BATCH = 16
SPARSE_STEPS = 24


def _time_sparse_mask() -> dict:
    """Dense vs CSR-sparse constraint masks: build + masked log-softmax.

    For each segment-vocabulary size, times one batch's mask build plus
    the masked log-softmax over random logits (the Eq. 11 hot path) on
    a warmed builder, dense vs sparse, and separately a full training
    step of that layer (forward + the NLL loss backward).  Density and
    vocabulary size are recorded so the scaling story is legible: the
    sparse win grows as the vocabulary grows and density falls.
    """
    from types import SimpleNamespace

    rng = np.random.default_rng(0)
    sizes = []
    for grid_n in SPARSE_GRID_SIZES:
        network = grid_city(nx=grid_n, ny=grid_n, spacing=200.0,
                            drop_prob=0.0, rng=np.random.default_rng(3))
        num_segments = network.num_segments
        x0, y0, x1, y1 = network.bounding_box()
        guide = np.stack(
            [rng.uniform(x0, x1, (SPARSE_BATCH, SPARSE_STEPS)),
             rng.uniform(y0, y1, (SPARSE_BATCH, SPARSE_STEPS))], axis=-1)
        # `build` only reads guide positions: a stub batch keeps the
        # setup cost of huge vocabularies out of the timed region.
        batch = SimpleNamespace(guide_xy=guide)
        builder = ConstraintMaskBuilder(network, radius=500.0)
        logits = rng.standard_normal((SPARSE_BATCH, SPARSE_STEPS, num_segments))
        flat_rows = SPARSE_BATCH * SPARSE_STEPS
        targets = rng.integers(0, num_segments, flat_rows)
        weights = np.ones(flat_rows)
        builder.build(batch)  # warm both cache layers
        density = builder.build_sparse(batch).density

        def leg(build_fn, backward):
            def run():
                log_mask = build_fn(batch)
                x = Tensor(logits, requires_grad=True)
                out = nn.masked_log_softmax(x, log_mask)
                if backward:
                    nn.nll_from_log_probs(
                        out.reshape(flat_rows, num_segments), targets, weights
                    ).backward()
            run()  # warm up
            return _best_of(run, repeats=7)

        dense = leg(builder.build, backward=False)
        sparse = leg(builder.build_sparse, backward=False)
        dense_step = leg(builder.build, backward=True)
        sparse_step = leg(builder.build_sparse, backward=True)
        sizes.append({
            "num_segments": num_segments,
            "density": density,
            "dense": dense,
            "sparse": sparse,
            "speedup": dense / sparse,
            "train_step_dense": dense_step,
            "train_step_sparse": sparse_step,
            "train_step_speedup": dense_step / sparse_step,
        })
    return {"sizes": sizes, "largest_vocab_speedup": sizes[-1]["speedup"]}


#: Ragged trajectory lengths for the decode benchmark (cycled over the
#: world's 33-point trajectories): mean ~20, so a padded decode wastes
#: ~40% of its row-steps on finished rows.
DECODE_LENGTHS = (9, 33, 17, 25, 13, 29, 11, 21)


def _time_decode() -> dict:
    """Packed ``DecodeSession`` vs padded full-length decode.

    A ragged-length recovery workload (the serving shape: requests of
    uneven lengths batched together), decoded through the same serving
    entry point with the packed-decode flag on and off.  Outputs are
    bit-identical on valid steps (asserted); only wall-clock changes.
    """
    world, _ = _world()
    trimmed = [
        MatchedTrajectory(t.traj_id, t.driver_id, t.epsilon,
                          t.points[:DECODE_LENGTHS[i % len(DECODE_LENGTHS)]])
        for i, t in enumerate(world.matched)
    ]
    dataset = TrajectoryDataset.from_matched(trimmed, world.grid,
                                             world.network, keep_ratio=0.25)
    config = _model_config(world, dataset)
    model = LTEModel(config, np.random.default_rng(11))
    model.eval()
    builder = ConstraintMaskBuilder(world.network, radius=500.0)
    batch = dataset.full_batch()
    log_mask = builder.build_for(batch, model)

    def run_packed():
        with nn.no_grad():
            return decode_model(model, batch, log_mask)

    def run_padded():
        with nn.use_packed_decode(False), nn.no_grad():
            return decode_model(model, batch, log_mask)

    packed_out = run_packed()  # warm caches both ways
    padded_out = run_padded()
    valid = batch.tgt_mask
    assert (packed_out.segments[valid] == padded_out.segments[valid]).all(), \
        "packed decode must emit the padded decode's segments"
    timings = {
        "padded": _best_of(run_padded),
        "packed": _best_of(run_packed),
    }
    lengths = valid.sum(axis=1)
    timings["speedup"] = timings["padded"] / timings["packed"]
    timings["rows"] = int(batch.size)
    timings["max_steps"] = int(batch.steps)
    timings["mean_length"] = float(lengths.mean())
    timings["packing_ratio"] = float(lengths.sum() / (batch.size * batch.steps))
    return timings


#: The mixed-precision leg runs a wider model than the fused-kernel leg:
#: the float32 win is memory traffic, which the benchmark should measure
#: in the memory-bound regime the optimisation targets.
DTYPE_HIDDEN = 96
DTYPE_EPOCHS = 2
DTYPE_FED_CLIENTS = 4
DTYPE_FED_ROUNDS = 2


def _time_compute_dtype() -> dict:
    """float32 vs float64 compute substrate: epoch, decode, fed round.

    Each leg builds its world under :func:`nn.use_compute_dtype` and
    times the identical workload at both precisions; alongside the
    timings it records the measured accuracy/loss drift (the audited
    cost of the speedup).  float64 is the reference; the epoch gate
    asserts the headline >= 1.3x local-epoch win.
    """
    world, dataset = _world()
    config = RecoveryModelConfig(
        num_cells=dataset.num_cells, num_segments=dataset.num_segments,
        cell_emb_dim=EMB, seg_emb_dim=EMB, hidden_size=DTYPE_HIDDEN,
        num_st_blocks=2, dropout=0.0, bbox=world.network.bounding_box(),
    )

    # Ragged decode workload (the serving shape), shared lengths with
    # the packed-decode benchmark.
    trimmed = [
        MatchedTrajectory(t.traj_id, t.driver_id, t.epsilon,
                          t.points[:DECODE_LENGTHS[i % len(DECODE_LENGTHS)]])
        for i, t in enumerate(world.matched)
    ]
    ragged = TrajectoryDataset.from_matched(trimmed, world.grid,
                                            world.network, keep_ratio=0.25)

    legs: dict[str, dict] = {}
    outputs: dict[str, dict] = {}
    for dtype in ("float64", "float32"):
        with nn.use_compute_dtype(dtype):
            model = LTEModel(config, np.random.default_rng(3))
            mask_builder = ConstraintMaskBuilder(world.network, radius=500.0)
            optimizer = nn.Adam(model.parameters(), lr=1e-3)
            rng = np.random.default_rng(4)
            epoch = lambda: _run_epoch(model, dataset, mask_builder,
                                       optimizer, nn.clip_grad_norm, rng)
            epoch()  # warm caches (collation, mask pools)
            epoch_seconds = _best_of(epoch, repeats=5)

            # Converged-enough model for the drift measurement.
            from repro.core.training import model_segment_accuracy
            accuracy = model_segment_accuracy(model, mask_builder, dataset)

            model.eval()
            batch = ragged.full_batch()
            log_mask = mask_builder.build_for(batch, model)

            def run_decode():
                with nn.no_grad():
                    return decode_model(model, batch, log_mask)

            decode_out = run_decode()
            decode_seconds = _best_of(run_decode, repeats=5)
            model.train()

            # One small serial federated run (broadcast/train/aggregate
            # at the compute dtype end to end).
            clients, global_test = build_federation(
                world, num_clients=DTYPE_FED_CLIENTS, keep_ratio=0.25)
            trainer = FederatedTrainer(
                lambda: LTEModel(config, np.random.default_rng(5)),
                clients, mask_builder,
                FederatedConfig(rounds=DTYPE_FED_ROUNDS, local_epochs=1,
                                use_meta=False,
                                training=TrainingConfig(batch_size=BATCH)),
                global_test, seed=0,
            )
            start = time.perf_counter()
            fed_result = trainer.run()
            fed_round_seconds = (time.perf_counter() - start) / DTYPE_FED_ROUNDS

            legs[dtype] = {
                "epoch": epoch_seconds,
                "decode": decode_seconds,
                "federated_round": fed_round_seconds,
            }
            outputs[dtype] = {
                "accuracy": accuracy,
                "decode_log_probs": decode_out.log_probs.data.astype(
                    np.float64),
                "fed_accuracy": fed_result.history[-1].global_accuracy,
            }

    valid_scale = np.abs(outputs["float64"]["decode_log_probs"]).max() + 1e-12
    drift = {
        "segment_accuracy_float64": outputs["float64"]["accuracy"],
        "segment_accuracy_float32": outputs["float32"]["accuracy"],
        "segment_accuracy_drift": abs(outputs["float32"]["accuracy"]
                                      - outputs["float64"]["accuracy"]),
        "fed_accuracy_drift": abs(outputs["float32"]["fed_accuracy"]
                                  - outputs["float64"]["fed_accuracy"]),
        "decode_log_prob_max_rel_drift": float(
            np.abs(outputs["float32"]["decode_log_probs"]
                   - outputs["float64"]["decode_log_probs"]).max()
            / valid_scale),
    }
    return {
        "hidden_size": DTYPE_HIDDEN,
        "float64": legs["float64"],
        "float32": legs["float32"],
        "epoch_speedup": legs["float64"]["epoch"] / legs["float32"]["epoch"],
        "decode_speedup": (legs["float64"]["decode"]
                           / legs["float32"]["decode"]),
        "federated_round_speedup": (legs["float64"]["federated_round"]
                                    / legs["float32"]["federated_round"]),
        "drift": drift,
    }


def _time_backend() -> dict:
    """Array-backend seam: dispatch overhead + workspace vs reference.

    Three measurements:

    * **dispatch overhead** — one fused GRU scan forward called directly
      vs through :func:`repro.nn.call_kernel` under the reference
      backend (which has no registered impl, so the seam's only cost is
      the lookup + fallback).  Gated < 2%: the seam must be free.
    * **epoch** — the fused local training epoch per backend; the
      workspace backend reuses pooled ``out=`` scratch across scan
      steps instead of re-allocating per step.
    * **decode** — the packed ragged-workload decode per backend; the
      workspace backend adds the precomputed sparse mask step-plan and
      the buffered ST decode step.

    The workspace results are asserted bitwise identical to reference
    (same ops, same order — only the allocations change); ``numba``
    legs are recorded only when that backend registered.
    """
    from repro.nn.backend import call_kernel
    from repro.nn.recurrent import _gru_forward_ref

    rng = np.random.default_rng(0)
    b, steps, hidden = 64, 33, HIDDEN
    scan_args = (rng.standard_normal((b, steps, 2 * hidden)),
                 rng.standard_normal((b, steps, hidden)),
                 np.zeros((b, hidden)),
                 rng.standard_normal((hidden, 2 * hidden)) * 0.1,
                 rng.standard_normal((hidden, hidden)) * 0.1, None)
    with nn.use_backend("reference"):
        _gru_forward_ref(*scan_args)  # warm
        direct = _best_of(lambda: _gru_forward_ref(*scan_args))
        dispatched = _best_of(lambda: call_kernel(
            "gru_scan_forward", _gru_forward_ref, *scan_args))
    dispatch_overhead = dispatched / direct - 1.0

    world, dataset = _world()
    config = _model_config(world, dataset)
    trimmed = [
        MatchedTrajectory(t.traj_id, t.driver_id, t.epsilon,
                          t.points[:DECODE_LENGTHS[i % len(DECODE_LENGTHS)]])
        for i, t in enumerate(world.matched)
    ]
    ragged = TrajectoryDataset.from_matched(trimmed, world.grid,
                                            world.network, keep_ratio=0.25)

    backends = [name for name in ("reference", "workspace", "numba")
                if name in nn.available_backends()]
    legs: dict[str, dict] = {}
    flats: dict[str, np.ndarray] = {}
    decodes: dict[str, object] = {}
    for name in backends:
        with nn.use_backend(name):
            model = LTEModel(config, np.random.default_rng(3))
            mask_builder = ConstraintMaskBuilder(world.network, radius=500.0)
            optimizer = nn.Adam(model.parameters(), lr=1e-3)
            rng_e = np.random.default_rng(4)
            epoch = lambda: _run_epoch(model, dataset, mask_builder,
                                       optimizer, nn.clip_grad_norm, rng_e)
            epoch()  # warm caches (collation, mask pools, scratch)
            epoch_seconds = _best_of(epoch, repeats=5)
            flats[name] = np.concatenate(
                [p.data.ravel() for p in model.parameters()])

            decode_model_ = LTEModel(config, np.random.default_rng(11))
            decode_model_.eval()
            batch = ragged.full_batch()
            log_mask = mask_builder.build_for(batch, decode_model_)

            def run_decode():
                with nn.no_grad():
                    return decode_model(decode_model_, batch, log_mask)

            decodes[name] = run_decode()
            legs[name] = {"epoch": epoch_seconds,
                          "decode": _best_of(run_decode)}

    # The workspace backend re-runs the same float ops in the same
    # order: everything must match reference bit for bit.
    np.testing.assert_array_equal(flats["workspace"], flats["reference"])
    np.testing.assert_array_equal(decodes["workspace"].segments,
                                  decodes["reference"].segments)
    np.testing.assert_array_equal(decodes["workspace"].log_probs.data,
                                  decodes["reference"].log_probs.data)

    return {
        "dispatch_direct": direct,
        "dispatch_via_seam": dispatched,
        "dispatch_overhead": dispatch_overhead,
        "backends": legs,
        "epoch_speedup": (legs["reference"]["epoch"]
                          / legs["workspace"]["epoch"]),
        "decode_speedup": (legs["reference"]["decode"]
                           / legs["workspace"]["decode"]),
    }


def _meta() -> dict:
    """Provenance block: what machine/configuration produced the JSON."""
    blas = None
    try:
        build = np.show_config(mode="dicts").get("Build Dependencies", {})
        blas = build.get("blas", {}).get("name")
    except Exception:
        pass  # older numpy without dict mode: leave null
    return {
        "backend": nn.get_backend(),
        "available_backends": list(nn.available_backends()),
        "numpy": np.__version__,
        "blas": blas,
        "cpus": _usable_cpus(),
        "compute_dtype": nn.get_compute_dtype().name,
    }


PARALLEL_WORKERS = 4
PARALLEL_CLIENTS = 8
PARALLEL_ROUNDS = 3

# Without fork, the pool must pickle the benchmark's model-factory
# closure, fails, and the trainer falls back to serial — so the
# "parallel" leg only measures real parallelism on fork platforms.
HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _time_federated_round() -> dict:
    """Per-round seconds for the serial vs process-pool round runner.

    A multi-client world (8 clients, 2 local epochs) over several
    rounds, so pool start-up amortises the way it does in a real run;
    per-round time is the total divided by the round count.  Both legs
    produce bit-identical histories (asserted — the speedup claim is
    only meaningful if the parallel run does the same work).
    """
    world, dataset = _world()
    clients, global_test = build_federation(world, num_clients=PARALLEL_CLIENTS,
                                            keep_ratio=0.25)
    config = _model_config(world, dataset)
    mask_builder = ConstraintMaskBuilder(world.network, radius=500.0)
    fed_config = FederatedConfig(rounds=PARALLEL_ROUNDS, local_epochs=2,
                                 use_meta=False,
                                 training=TrainingConfig(batch_size=BATCH))

    def run(workers: int):
        trainer = FederatedTrainer(
            lambda: LTEModel(config, np.random.default_rng(5)),
            clients, mask_builder, fed_config, global_test, seed=0,
            workers=workers,
        )
        start = time.perf_counter()
        result = trainer.run()
        return (time.perf_counter() - start) / PARALLEL_ROUNDS, result

    serial_seconds, serial_result = run(0)
    parallel_seconds, parallel_result = run(PARALLEL_WORKERS)
    assert serial_result.history == parallel_result.history, \
        "parallel rounds must be bit-identical to serial rounds"
    return {
        "serial": serial_seconds,
        "parallel": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "workers": PARALLEL_WORKERS,
        "clients": PARALLEL_CLIENTS,
        "cpus": _usable_cpus(),
        "fork": HAVE_FORK,
    }


def test_perf_hotpath():
    encoder = _time_encoder()
    epoch = _time_epoch()
    sparse_mask = _time_sparse_mask()
    decode = _time_decode()
    fed_round = _time_federated_round()
    compute_dtype = _time_compute_dtype()
    backend = _time_backend()

    report = {
        "meta": _meta(),
        "encoder_forward_backward_seconds": encoder,
        "local_epoch_seconds": epoch,
        "sparse_mask_seconds": sparse_mask,
        "decode_seconds": decode,
        "federated_round_seconds": fed_round,
        "compute_dtype_seconds": compute_dtype,
        "backend_seconds": backend,
    }
    # Merge instead of overwriting: sections owned by other benchmarks
    # (e.g. fault_tolerance) must survive a hot-path rerun.
    update_bench(report)
    print()
    print(json.dumps(report, indent=2))

    # The fused hot path must beat the pre-PR per-step tape path clearly.
    # Regression tripwires, not measurements: typical values are ~1.3x
    # (encoder) and ~3x (epoch); the slack absorbs run-to-run jitter on
    # loaded single-core containers.
    assert encoder["speedup"] > 1.15, encoder
    assert epoch["speedup"] >= 2.5, epoch
    # Sparse masks must win clearly where it matters — the largest
    # vocabulary (density falls as the network grows, so the dense
    # build + softmax pays for ever more inactive segments).
    assert sparse_mask["largest_vocab_speedup"] >= 2.0, sparse_mask
    # Packed decode must beat the padded loop on a ragged workload —
    # the work ratio is 1/packing_ratio (~1.7 here); the tripwire
    # leaves slack for per-step engine overhead and timer jitter.
    assert decode["speedup"] > 1.15, decode
    # Process-pool rounds must scale once there are cores to scale onto
    # (and a start method that can actually run the pool).
    if fed_round["cpus"] >= PARALLEL_WORKERS and fed_round["fork"]:
        assert fed_round["speedup"] > 1.5, fed_round
    # The float32 substrate halves hot-loop memory traffic: the local
    # epoch must win >= 1.3x end to end, and the accuracy cost must stay
    # inside the audited drift budget (see docs/PERFORMANCE.md).
    assert compute_dtype["epoch_speedup"] >= 1.3, compute_dtype
    assert compute_dtype["drift"]["segment_accuracy_drift"] <= 0.02, \
        compute_dtype
    # The backend seam must be free at the dispatch layer (< 2% on a
    # single hot-kernel call) and the workspace backend must win on at
    # least one of the two hot paths it targets (allocation-bound epoch
    # scans or the plan-driven packed decode).
    assert backend["dispatch_overhead"] < 0.02, backend
    assert max(backend["epoch_speedup"], backend["decode_speedup"]) >= 1.1, \
        backend
