"""Design-choice ablations (companion to Figure 7).

DESIGN.md flags two mechanisms as load-bearing beyond the paper's own
ablation: the adaptive lambda schedule of Eq. 18 (vs a fixed lambda0)
and the constraint mask of Eq. 10-11 (vs unconstrained logits).  The
mask is expected to matter most: without it predictions are free to
leave the road network entirely, which inflates the route-distance
errors.
"""

from __future__ import annotations

from repro.experiments import format_table, run_design_ablations

from conftest import publish


def test_design_ablations(benchmark, context):
    runs = benchmark.pedantic(lambda: run_design_ablations(context),
                              rounds=1, iterations=1)
    publish("fig11_design_ablations",
            format_table(runs, title="Design ablations: lambda schedule & mask"))

    by_method = {r.method: r.metrics for r in runs}
    full = by_method["LightTR (full)"]
    nomask = by_method["no constraint mask"]
    fixed = by_method["fixed lambda"]

    # The constraint mask is the dominant spatial prior: removing it
    # must hurt recall substantially.
    assert full.recall > nomask.recall + 0.05
    # The adaptive schedule should not lose badly to a fixed lambda.
    assert full.recall >= fixed.recall - 0.08
    # All variants stay numerically sane.
    for m in by_method.values():
        assert m.rmse >= m.mae - 1e-9
