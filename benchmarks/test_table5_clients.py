"""Table V - effect of the number of clients (keep ratio 12.5%).

LightTR is trained with increasing client counts on both datasets; the
paper finds accuracy generally improves with more clients because more
data participates (with small non-monotonicities, e.g. 20 vs 15 on
Geolife recall).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import format_table, run_client_count_sweep

from conftest import publish, scale_name

# The paper sweeps {5, 10, 15, 20}; scale the counts down with the world.
COUNTS = {"tiny": (2, 3), "small": (2, 3, 4), "paper": (5, 10, 15, 20)}


def test_table5_client_count(benchmark, context):
    counts = COUNTS[scale_name()]
    runs = benchmark.pedantic(
        lambda: run_client_count_sweep(context, client_counts=counts),
        rounds=1, iterations=1,
    )
    publish("table5_clients",
            format_table(runs, title="Table V: effect of the number of clients"))

    for dataset in ("geolife", "tdrive"):
        recalls = [r.metrics.recall for r in runs if r.dataset == dataset]
        # Shape: the largest client count is not notably worse than the
        # smallest (more data helps; small dips are allowed).
        assert recalls[-1] >= recalls[0] - 0.08
