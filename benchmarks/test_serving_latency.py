"""Serving latency benchmark: the continuous batcher under load.

Measures the production-shaped question the scheduler exists to
answer — per-request latency under a seeded Poisson arrival process
against :class:`repro.serving.DecodeService`, and how throughput
scales with the working-set budget.  Two measurements, written to
``results/serving_latency.*.txt`` and merged into
``BENCH_hotpath.json`` under ``serving_latency``:

* **Poisson workload percentiles** — requests arrive with seeded
  exponential inter-arrival gaps; each request's latency runs from its
  scheduled arrival to result availability (queueing included).
  Reported: p50/p95/p99 and achieved throughput.
* **throughput vs decode batch** — one burst of requests drained
  through :class:`~repro.serving.ContinuousBatcher` at working-set
  budgets 1/2/4/8; wall-clock throughput per budget (the
  latency/throughput knob's shape).

Wall-clock numbers are hardware-dependent context for the JSON; the
tested invariants are structural (every request completes, the
percentile ordering is sane, larger budgets never lose throughput
catastrophically).  Marked ``slow``: tier-1 skips it; run with

    pytest -m slow benchmarks/test_serving_latency.py -s
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core import ConstraintMaskBuilder, RecoveryModelConfig
from repro.core.lte import LTEModel
from repro.data import TrajectoryDataset, geolife_like
from repro.data.trajectory import MatchedTrajectory
from repro.serving import ContinuousBatcher, DecodeService

from conftest import publish, scale_name, update_bench

pytestmark = pytest.mark.slow

#: Workload sizes per REPRO_SCALE.
WORKLOAD = {"tiny": 24, "small": 48, "paper": 160}
ARRIVAL_RATE_HZ = 100.0  # mean Poisson arrival rate
BUDGETS = (1, 2, 4, 8)
SEED = 2024


def _serving_world():
    world = geolife_like(num_drivers=6, trajectories_per_driver=6,
                         points_per_trajectory=25, seed=11)
    lengths = (7, 25, 13, 19, 9, 16, 11, 22)
    trimmed = [MatchedTrajectory(t.traj_id, t.driver_id, t.epsilon,
                                 t.points[:lengths[i % len(lengths)]])
               for i, t in enumerate(world.matched)]
    dataset = TrajectoryDataset.from_matched(trimmed, world.grid,
                                             world.network, keep_ratio=0.25)
    config = RecoveryModelConfig(
        num_cells=dataset.num_cells, num_segments=dataset.num_segments,
        cell_emb_dim=16, seg_emb_dim=16, hidden_size=32,
        num_st_blocks=2, dropout=0.0, bbox=world.network.bounding_box(),
    )
    model = LTEModel(config, np.random.default_rng(0))
    model.eval()
    mask = ConstraintMaskBuilder(world.network, radius=400.0)
    return dataset, model, mask


def _requests(dataset, model, mask, count, rng):
    """``count`` single-trajectory request batches (random trajectories)."""
    picks = rng.integers(0, len(dataset.examples), size=count)
    requests = []
    for idx in picks:
        single = TrajectoryDataset([dataset.examples[int(idx)]], dataset.grid,
                                   dataset.network, dataset.keep_ratio)
        batch = single.full_batch()
        requests.append((batch, mask.build_for(batch, model)))
    return requests


def _run_poisson(service, requests, arrivals):
    """Drive the service on a wall-clock arrival schedule.

    Returns per-request latencies (seconds from scheduled arrival to
    result availability — queueing and decoding included)."""
    latencies = [None] * len(requests)
    threads = []
    start = time.monotonic()

    def waiter(i, handle):
        service.result(handle, timeout=300)
        latencies[i] = time.monotonic() - (start + arrivals[i])

    for i, (batch, log_mask) in enumerate(requests):
        gap = arrivals[i] - (time.monotonic() - start)
        if gap > 0:
            time.sleep(gap)
        handle = service.submit(batch, log_mask)
        thread = threading.Thread(target=waiter, args=(i, handle))
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join(timeout=300)
    assert all(lat is not None for lat in latencies)
    return np.array(latencies)


def test_serving_latency_under_poisson_arrivals():
    dataset, model, mask = _serving_world()
    rng = np.random.default_rng(SEED)
    count = WORKLOAD[scale_name()]
    requests = _requests(dataset, model, mask, count, rng)
    arrivals = np.cumsum(rng.exponential(1.0 / ARRIVAL_RATE_HZ, size=count))

    with DecodeService(model, max_batch=8, max_queue=2 * count) as service:
        wall_start = time.monotonic()
        latencies = _run_poisson(service, requests, arrivals)
        wall = time.monotonic() - wall_start
        stats = service.stats
    assert stats["completed"] == count
    assert stats["rejected"] == 0

    p50, p95, p99 = (float(np.percentile(latencies, q) * 1e3)
                     for q in (50, 95, 99))
    assert p50 <= p95 <= p99
    throughput = count / wall

    # -- throughput vs the working-set budget (one synchronous burst) --
    curve = {}
    for budget in BUDGETS:
        burst = _requests(dataset, model, mask, count, np.random.default_rng(SEED))
        batcher = ContinuousBatcher(model, max_batch=budget)
        tick = time.monotonic()
        for batch, log_mask in burst:
            batcher.submit(batch, log_mask)
        outcomes = batcher.drain()
        curve[str(budget)] = count / (time.monotonic() - tick)
        assert len(outcomes) == count
        assert not any(isinstance(o, Exception) for _, o in outcomes)

    rows = [
        f"serving latency ({scale_name()}): {count} requests, "
        f"Poisson {ARRIVAL_RATE_HZ:.0f} Hz, max_batch=8",
        f"  p50 {p50:8.2f} ms   p95 {p95:8.2f} ms   p99 {p99:8.2f} ms",
        f"  throughput {throughput:8.1f} req/s (wall {wall:.2f} s)",
        "throughput vs decode batch (burst drain):",
    ]
    rows += [f"  max_batch={b:<2d} {curve[str(b)]:8.1f} req/s"
             for b in BUDGETS]
    publish("serving_latency", "\n".join(rows))
    update_bench({"serving_latency": {
        "scale": scale_name(),
        "requests": count,
        "arrival_rate_hz": ARRIVAL_RATE_HZ,
        "max_batch": 8,
        "p50_ms": p50,
        "p95_ms": p95,
        "p99_ms": p99,
        "throughput_rps": throughput,
        "throughput_vs_decode_batch": curve,
    }})
