"""Shared benchmark fixtures.

Every benchmark regenerates one paper table/figure.  The experiment
scale is selected with the ``REPRO_SCALE`` environment variable
(``tiny`` / ``small`` / ``paper``; default ``small``).  Each benchmark
prints its rows and also writes them under ``results/`` so a tee'd run
keeps the artefacts.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import SCALES, ExperimentContext

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


def scale_name() -> str:
    name = os.environ.get("REPRO_SCALE", "small")
    if name not in SCALES:
        raise ValueError(f"REPRO_SCALE must be one of {sorted(SCALES)}, got {name!r}")
    return name


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """One shared context per benchmark session (worlds are cached)."""
    return ExperimentContext(SCALES[scale_name()])


def publish(name: str, text: str) -> None:
    """Print a result block and persist it under results/."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.{scale_name()}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
