"""Shared benchmark fixtures.

Every benchmark regenerates one paper table/figure.  The experiment
scale is selected with the ``REPRO_SCALE`` environment variable
(``tiny`` / ``small`` / ``paper``; default ``small``).  Each benchmark
prints its rows and also writes them under ``results/`` so a tee'd run
keeps the artefacts.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments import SCALES, ExperimentContext

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_hotpath.json")


def scale_name() -> str:
    name = os.environ.get("REPRO_SCALE", "small")
    if name not in SCALES:
        raise ValueError(f"REPRO_SCALE must be one of {sorted(SCALES)}, got {name!r}")
    return name


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """One shared context per benchmark session (worlds are cached)."""
    return ExperimentContext(SCALES[scale_name()])


def publish(name: str, text: str) -> None:
    """Print a result block and persist it under results/."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.{scale_name()}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")


def update_bench(sections: dict) -> None:
    """Merge top-level sections into ``BENCH_hotpath.json``.

    Benchmarks own disjoint sections of the JSON (the hot-path timings,
    the fault-tolerance sweep, ...), so each writer merges over what is
    already on disk instead of clobbering the other benchmarks' data.
    """
    report: dict = {}
    if os.path.exists(BENCH_PATH):
        with open(BENCH_PATH) as handle:
            try:
                report = json.load(handle)
            except ValueError:
                report = {}  # corrupt file: rewrite from scratch
    report.update(sections)
    with open(BENCH_PATH, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
