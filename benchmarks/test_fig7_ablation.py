"""Figure 7 - ablation study (keep ratio 12.5%).

Variants: w/o FL (no server; isolated training + one model exchange),
w/o LS (the lightweight ST-operator replaced by MTrajRec as the local
model), and w/o Meta (meta-knowledge distillation replaced by plain
FedAvg).  The paper finds every component contributes, with w/o Meta
the weakest variant.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import format_table, run_ablation

from conftest import publish


def test_fig7_ablation(benchmark, context):
    runs = benchmark.pedantic(lambda: run_ablation(context),
                              rounds=1, iterations=1)
    publish("fig7_ablation", format_table(runs, title="Figure 7: ablation study"))

    def mean_recall(method):
        return float(np.mean([r.metrics.recall for r in runs
                              if r.method == method]))

    full = mean_recall("LightTR")
    # Shape: the full model is at least competitive with every ablation
    # (exact orderings fluctuate at reduced scale; the full model must
    # never collapse below an ablation by a large margin).
    for variant in ("w/o FL", "w/o Meta", "w/o LS"):
        assert full >= mean_recall(variant) - 0.08, variant
    # w/o FL (one-shot exchange) must clearly trail federated training.
    assert full >= mean_recall("w/o FL") - 0.02
