"""Table IV - overall performance comparison on both datasets.

Every method (FC+FL, RNN+FL, MTrajRec+FL, RNTrajRec+FL, LightTR) is
trained federated on both synthetic stand-in datasets at the paper's
three keep ratios, and evaluated on Recall / Precision / MAE / RMSE.

Reproduction target (shape, not absolute numbers): LightTR ranks first
or ties on the aggregate; FC+FL ranks last or near-last; accuracy
improves as the keep ratio grows.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import format_comparison_table, run_overall_comparison

from conftest import publish

KEEPS = (0.0625, 0.125, 0.25)
METHODS = ("FC+FL", "RNN+FL", "MTrajRec+FL", "RNTrajRec+FL", "LightTR")


def test_table4_overall(benchmark, context):
    runs = benchmark.pedantic(
        lambda: run_overall_comparison(context, keep_ratios=KEEPS,
                                       methods=METHODS),
        rounds=1, iterations=1,
    )
    publish("table4_overall",
            format_comparison_table(runs, title="Table IV: overall comparison"))

    def mean_recall(method):
        return float(np.mean([r.metrics.recall for r in runs
                              if r.method == method]))

    def mean_mae(method):
        return float(np.mean([r.metrics.mae for r in runs if r.method == method]))

    # Shape assertion 1: LightTR beats the weakest baseline clearly and
    # is at worst competitive with the strongest.
    assert mean_recall("LightTR") > mean_recall("FC+FL")
    best_baseline = max(mean_recall(m) for m in METHODS[:-1])
    assert mean_recall("LightTR") >= best_baseline - 0.05

    # Shape assertion 2: more observations -> better LightTR accuracy.
    lighttr_by_keep = {
        keep: np.mean([r.metrics.recall for r in runs
                       if r.method == "LightTR" and r.keep_ratio == keep])
        for keep in KEEPS
    }
    assert lighttr_by_keep[0.25] >= lighttr_by_keep[0.0625] - 0.02

    # Shape assertion 3: all metrics are finite and sane.
    for r in runs:
        assert 0.0 <= r.metrics.recall <= 1.0
        assert r.metrics.rmse >= r.metrics.mae - 1e-9
