"""Client-scale benchmark: thousand-client trained rounds.

Runs one trained federated round at 100 / 500 / 1000 clients in both
client modes — eager (every ``FederatedClient`` materialised up front)
and lazy (flat shards + a bounded model arena) — and records, per
configuration, the wall-clock round seconds and the process peak RSS.
Written to ``results/client_scale.*.txt`` and merged into
``BENCH_hotpath.json`` under ``client_scale``.

Every configuration runs in its **own subprocess**: ``ru_maxrss`` is a
process-lifetime high-water mark, so measuring eager and lazy in one
process would report the eager peak for both.

The acceptance gates:

* the 1000-client lazy trained round completes;
* lazy and eager produce **bit-identical** round histories and final
  global parameters at every rung (compared via sha256 digests across
  the subprocess boundary);
* at 500+ clients, lazy peak RSS is at least ``MEMORY_GATE``x below
  eager.

Marked ``slow``: tier-1 (`pytest -x -q`) skips it; run with

    pytest -m slow benchmarks/test_client_scale.py -s
"""

from __future__ import annotations

import hashlib
import json
import os
import resource
import subprocess
import sys
import time

CLIENT_COUNTS = (100, 500, 1000)
MEMORY_GATE = 4.0  # lazy vs eager peak RSS at 500+ clients, at least
CLIENT_FRACTION = 0.02  # a thousand-client round trains 20 clients
ROUNDS = 1
SRC_DIR = os.path.join(os.path.dirname(__file__), "..", "src")


def _run_child(num_clients: int, lazy: bool) -> dict:
    """One (count, mode) measurement in an isolated interpreter."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(SRC_DIR)
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--child",
         str(num_clients), "1" if lazy else "0"],
        capture_output=True, text=True, env=env, timeout=900)
    if proc.returncode != 0:
        raise RuntimeError(
            f"child (clients={num_clients}, lazy={lazy}) failed:\n"
            f"{proc.stdout}\n{proc.stderr}")
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _child_main(num_clients: int, lazy: bool) -> None:
    """Build the federation, run ROUNDS trained rounds, report JSON."""
    import numpy as np

    from repro.core import ConstraintMaskBuilder, RecoveryModelConfig
    from repro.core.lte import LTEModel
    from repro.core.training import TrainingConfig
    from repro.data import TrajectoryDataset, geolife_like
    from repro.federated import (
        FederatedConfig,
        FederatedTrainer,
        build_federation,
    )

    # 40 x 50 trajectories: enough to give 1000 iid clients a non-empty
    # train split each, cheap enough that the dataset itself is noise
    # next to the per-client model/optimizer state being measured.
    world = geolife_like(num_drivers=40, trajectories_per_driver=50,
                         points_per_trajectory=17, seed=7)
    dataset = TrajectoryDataset.from_matched(world.matched, world.grid,
                                             world.network, keep_ratio=0.25)
    config = RecoveryModelConfig(
        num_cells=dataset.num_cells, num_segments=dataset.num_segments,
        cell_emb_dim=16, seg_emb_dim=16, hidden_size=48,
        num_st_blocks=2, dropout=0.0, bbox=world.network.bounding_box(),
    )
    clients, global_test = build_federation(world, num_clients=num_clients,
                                            keep_ratio=0.25, scheme="iid")
    mask_builder = ConstraintMaskBuilder(world.network, radius=500.0)
    fed_config = FederatedConfig(
        rounds=ROUNDS, client_fraction=CLIENT_FRACTION, local_epochs=1,
        use_meta=False, lazy_clients=lazy,
        training=TrainingConfig(batch_size=16),
    )

    build_start = time.perf_counter()
    trainer = FederatedTrainer(
        lambda: LTEModel(config, np.random.default_rng(5)),
        clients, mask_builder, fed_config, global_test, seed=0,
    )
    build_seconds = time.perf_counter() - build_start
    round_start = time.perf_counter()
    result = trainer.run()
    round_seconds = (time.perf_counter() - round_start) / ROUNDS

    # The bitwise contract crosses the process boundary as digests:
    # repr() round-trips floats exactly, and the final global vector is
    # hashed from its raw float64 bytes.
    digest = hashlib.sha256()
    digest.update(repr(result.history).encode())
    digest.update(np.ascontiguousarray(
        trainer.server.global_flat(dtype=np.float64)).tobytes())
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0

    print(json.dumps({
        "clients": num_clients,
        "lazy": lazy,
        "trained_clients": len(result.history[0].completed_clients),
        "build_seconds": build_seconds,
        "round_seconds": round_seconds,
        "peak_rss_mb": peak_rss_mb,
        "final_accuracy": result.history[-1].global_accuracy,
        "digest": digest.hexdigest(),
    }))


if __name__ == "__main__" and "--child" in sys.argv:
    _child_main(int(sys.argv[2]), sys.argv[3] == "1")
    sys.exit(0)


import pytest  # noqa: E402  (child mode must not import pytest)

from conftest import publish, update_bench  # noqa: E402

pytestmark = pytest.mark.slow


def test_client_scale():
    rows = []
    for num_clients in CLIENT_COUNTS:
        eager = _run_child(num_clients, lazy=False)
        lazy = _run_child(num_clients, lazy=True)
        assert lazy["digest"] == eager["digest"], (
            f"lazy and eager histories diverged at {num_clients} clients")
        rows.append({
            "clients": num_clients,
            "trained_clients": eager["trained_clients"],
            "eager_rss_mb": eager["peak_rss_mb"],
            "lazy_rss_mb": lazy["peak_rss_mb"],
            "rss_ratio": eager["peak_rss_mb"] / lazy["peak_rss_mb"],
            "eager_build_seconds": eager["build_seconds"],
            "lazy_build_seconds": lazy["build_seconds"],
            "eager_round_seconds": eager["round_seconds"],
            "lazy_round_seconds": lazy["round_seconds"],
            "final_accuracy": lazy["final_accuracy"],
            "bitwise_identical": True,
        })

    lines = [
        f"Client scale: one trained round, client_fraction={CLIENT_FRACTION}"
        f" (lazy == eager bitwise at every rung)",
        "",
        "clients  trained  eager RSS  lazy RSS  ratio  "
        "eager round  lazy round",
    ]
    for row in rows:
        lines.append(
            f"{row['clients']:>7}  {row['trained_clients']:>7}  "
            f"{row['eager_rss_mb']:>8.1f}M  {row['lazy_rss_mb']:>7.1f}M  "
            f"{row['rss_ratio']:>4.1f}x  "
            f"{row['eager_round_seconds']:>10.2f}s  "
            f"{row['lazy_round_seconds']:>9.2f}s")
    lines.append("")
    lines.append(f"memory gate: lazy cuts peak RSS >= {MEMORY_GATE}x at "
                 f"500+ clients")
    publish("client_scale", "\n".join(lines))
    update_bench({"client_scale": {
        "client_fraction": CLIENT_FRACTION,
        "rounds": ROUNDS,
        "memory_gate": MEMORY_GATE,
        "ladder": rows,
    }})

    # The acceptance gates: the thousand-client trained round completed
    # (the rows exist and trained clients uploaded), and lazy cuts peak
    # RSS by the gate factor wherever eager pays per-client state.
    top = rows[-1]
    assert top["clients"] == 1000 and top["trained_clients"] >= 1
    for row in rows:
        if row["clients"] >= 500:
            assert row["rss_ratio"] >= MEMORY_GATE, (
                f"lazy saves only {row['rss_ratio']:.1f}x at "
                f"{row['clients']} clients (gate {MEMORY_GATE}x)")
