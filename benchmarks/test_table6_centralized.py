"""Table VI - centralized MTrajRec vs federated LightTR.

Centralized MTrajRec trains on the pooled data (no privacy); LightTR
stays federated.  The paper's point: LightTR matches or beats the
centralized state of the art while never centralising trajectories.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import format_comparison_table, run_centralized_comparison

from conftest import publish

KEEPS = (0.0625, 0.125, 0.25)


def test_table6_centralized_vs_lighttr(benchmark, context):
    runs = benchmark.pedantic(
        lambda: run_centralized_comparison(context, keep_ratios=KEEPS),
        rounds=1, iterations=1,
    )
    publish("table6_centralized",
            format_comparison_table(runs, title="Table VI: centralized vs LightTR"))

    light = np.mean([r.metrics.recall for r in runs if r.method == "LightTR"])
    central = np.mean([r.metrics.recall for r in runs
                       if r.method == "MTrajRec(centralized)"])
    # Shape: federated LightTR is competitive with centralized MTrajRec
    # (the paper reports LightTR ahead in most cells, close in the rest).
    assert light >= central - 0.08
    # Both are real models, far above chance.
    assert light > 0.15 and central > 0.15
