"""Figure 5 - running efficiency on Geolife.

Measures per-epoch wall-clock training time (Figure 5a) and analytic
FLOPs / parameter counts (Figure 5b) for the RNN-based methods and
LightTR, plus the per-round communication payload the parameters imply.

Reproduction target: LightTR's FLOPs and parameters are well below
MTrajRec+FL and RNTrajRec+FL (the paper reports 86.7% FLOPs reduction
vs RNTrajRec); plain RNN+FL may be slightly cheaper in time but is far
less accurate (Table IV).
"""

from __future__ import annotations

import numpy as np

from repro.baselines import make_model_factory
from repro.core.training import LocalTrainer
from repro.metrics import profile_model

from conftest import publish, scale_name

METHODS = ("RNN+FL", "MTrajRec+FL", "RNTrajRec+FL", "LightTR")


def _profile_all(context):
    dataset_name = "geolife"
    clients, _ = context.federation(dataset_name, 0.125)
    train_set = clients[0].train
    config = context.model_config(dataset_name)
    network = context.dataset(dataset_name).network
    seq_len = context.scale.points_per_trajectory
    reports = []
    for method in METHODS:
        model = make_model_factory(method, config, network,
                                   seed=context.scale.seed)()
        trainer = LocalTrainer(model, context.mask_builder(dataset_name),
                               context.training_config(),
                               np.random.default_rng(0))
        trainer.train_epoch(train_set)  # warm caches before timing
        reports.append(profile_model(method, model, trainer, train_set, seq_len))
    return reports


def test_fig5_efficiency(benchmark, context):
    reports = benchmark.pedantic(lambda: _profile_all(context),
                                 rounds=1, iterations=1)
    lines = ["Figure 5: running efficiency (geolife_like)"]
    lines += [str(r) for r in reports]
    by_name = {r.name: r for r in reports}
    reduction = 1.0 - by_name["LightTR"].flops / by_name["RNTrajRec+FL"].flops
    lines.append(f"LightTR FLOPs reduction vs RNTrajRec+FL: {reduction * 100:.1f}%"
                 f" (paper: 86.7%)")
    publish("fig5_efficiency", "\n".join(lines))

    # Shape: the lightweight operator wins on FLOPs and parameters
    # against both attention-based baselines.
    assert by_name["LightTR"].flops < by_name["MTrajRec+FL"].flops
    assert by_name["LightTR"].flops < by_name["RNTrajRec+FL"].flops
    assert by_name["LightTR"].parameters < by_name["RNTrajRec+FL"].parameters
    assert by_name["LightTR"].payload_bytes < by_name["RNTrajRec+FL"].payload_bytes
    # The measured epoch time beats the heaviest baseline once models are
    # big enough for compute (not Python overhead) to dominate.
    # Imported at module scope: a function-body `from conftest import`
    # resolves against whichever conftest.py pytest loaded *last* in a
    # whole-repo run, not this directory's.
    if scale_name() != "tiny":
        assert (by_name["LightTR"].epoch_seconds
                < by_name["RNTrajRec+FL"].epoch_seconds * 1.1)
    assert reduction > 0.3
