"""Table II - categorisation and analysis of base ST-operators.

Regenerates the asymptotic time/space cost table for CNN / RNN / Attn
operators and the paper's lightweight MLP operator, and checks the
orderings the paper's argument rests on.
"""

from __future__ import annotations

from repro.nn import st_operator_complexity

from conftest import publish

N, L, D = 1000, 33, 64  # trajectories, max length, embedding size


def _rows():
    rows = []
    for kind in ("cnn", "rnn", "attn", "lightweight"):
        cost = st_operator_complexity(kind, N, L, D)
        rows.append((kind, cost["time"], cost["space"]))
    return rows


def test_table2_complexity(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    lines = [f"Table II: ST-operator complexity (N={N}, L={L}, D={D})",
             f"{'operator':>12}  {'time (ops)':>16}  {'space':>10}"]
    for kind, t, s in rows:
        lines.append(f"{kind:>12}  {t:16.3e}  {s:10.3e}")
    publish("table2_complexity", "\n".join(lines))

    by_kind = {kind: (t, s) for kind, t, s in rows}
    # Attn time dominates CNN/RNN; lightweight is cheapest in both axes.
    assert by_kind["attn"][0] > by_kind["rnn"][0]
    assert by_kind["lightweight"][0] < by_kind["rnn"][0]
    assert by_kind["lightweight"][1] < by_kind["cnn"][1]
