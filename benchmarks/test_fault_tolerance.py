"""Fault-tolerance benchmark: accuracy vs injected failure rate, plus
the degraded-pool acceptance scenario.

Two measurements, both written to ``results/fault_tolerance.*.txt``
and merged into ``BENCH_hotpath.json`` under ``fault_tolerance``:

* **accuracy-vs-dropout sweep** — LightTR trained under seeded
  dropout-only fault plans from 0% to 50% client loss per round
  (:func:`repro.experiments.run_fault_tolerance_sweep`).  Quorum
  aggregation over the survivors keeps every run finishing; the sweep
  records how much accuracy the lost client-rounds cost.
* **30% injected-failure pool run** — a mixed crash/dropout/straggler/
  corrupt plan totalling a 30% per-client-round failure rate, run
  serially and on the process pool.  The acceptance gates: every round
  completes, the pool never permanently demotes to serial, and the
  pool history is bit-identical to the serial history under the same
  plan (the determinism-under-faults contract, see
  docs/ROBUSTNESS.md).

Marked ``slow``: tier-1 (`pytest -x -q`) skips it; run with

    pytest -m slow benchmarks/test_fault_tolerance.py -s
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings

import numpy as np
import pytest

from repro.core import ConstraintMaskBuilder, RecoveryModelConfig
from repro.core.lte import LTEModel
from repro.core.training import TrainingConfig
from repro.data import TrajectoryDataset, geolife_like
from repro.experiments import format_fault_rows, run_fault_tolerance_sweep
from repro.federated import FederatedConfig, FederatedTrainer, build_federation

from conftest import publish, update_bench

pytestmark = pytest.mark.slow

#: Mixed plan totalling a 30% per-client-round failure rate (the
#: acceptance scenario from the robustness PR).
MIXED_PLAN = "crash=0.1,dropout=0.1,straggler=0.05,corrupt=0.05,seed=1013,delay=0.005"
MIXED_RATE = 0.30
ACCEPT_CLIENTS = 8
ACCEPT_ROUNDS = 4
ACCEPT_WORKERS = 4

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _acceptance_world():
    world = geolife_like(num_drivers=12, trajectories_per_driver=8,
                         points_per_trajectory=33, seed=7)
    dataset = TrajectoryDataset.from_matched(world.matched, world.grid,
                                             world.network, keep_ratio=0.25)
    config = RecoveryModelConfig(
        num_cells=dataset.num_cells, num_segments=dataset.num_segments,
        cell_emb_dim=16, seg_emb_dim=16, hidden_size=48,
        num_st_blocks=2, dropout=0.0, bbox=world.network.bounding_box(),
    )
    return world, config


def _run_acceptance() -> dict:
    """The 30% injected-failure run, serial vs pool, with the gates."""
    world, config = _acceptance_world()
    clients, global_test = build_federation(world, num_clients=ACCEPT_CLIENTS,
                                            keep_ratio=0.25)
    mask_builder = ConstraintMaskBuilder(world.network, radius=500.0)
    fed_config = FederatedConfig(
        rounds=ACCEPT_ROUNDS, local_epochs=1, use_meta=False,
        fault_plan=MIXED_PLAN, task_retries=1,
        training=TrainingConfig(batch_size=16),
    )

    def run(workers: int):
        trainer = FederatedTrainer(
            lambda: LTEModel(config, np.random.default_rng(5)),
            clients, mask_builder, fed_config, global_test, seed=0,
            workers=workers,
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            start = time.perf_counter()
            result = trainer.run()
            seconds = (time.perf_counter() - start) / ACCEPT_ROUNDS
        return result, seconds, [str(w.message) for w in caught]

    serial_result, serial_seconds, _ = run(0)
    history = serial_result.history
    failed = sum(len(r.failures) for r in history)
    retries = sum(r.total_retries for r in history)
    payload = {
        "plan": MIXED_PLAN,
        "injected_rate": MIXED_RATE,
        "clients": ACCEPT_CLIENTS,
        "rounds": len(history),
        "failed_client_rounds": failed,
        "retried_attempts": retries,
        "rounds_skipped": sum(1 for r in history if not r.aggregated),
        "serial_round_seconds": serial_seconds,
        "fork": HAVE_FORK,
        "cpus": _usable_cpus(),
    }

    # Every round must complete even at a 30% injected failure rate, and
    # the plan must actually bite (otherwise the gate is vacuous).
    assert len(history) == ACCEPT_ROUNDS, history
    assert failed > 0, "30% fault plan injected no failures"

    if HAVE_FORK:
        pool_result, pool_seconds, pool_warnings = run(ACCEPT_WORKERS)
        demoted = any("for the rest of the run" in w for w in pool_warnings)
        payload.update({
            "pool_round_seconds": pool_seconds,
            "pool_workers": ACCEPT_WORKERS,
            "pool_matches_serial": pool_result.history == history,
            "permanent_serial_demotion": demoted,
        })
        # The acceptance gates: no permanent demotion, no mid-run pool
        # fallback, and bit-identical degraded histories.
        assert not demoted, pool_warnings
        assert all(r.fallback_cause == "" for r in pool_result.history), \
            [r.fallback_cause for r in pool_result.history]
        assert pool_result.history == history, \
            "pool history diverged from serial under the same fault plan"
    return payload


def test_fault_tolerance(context):
    rows = run_fault_tolerance_sweep(context)
    acceptance = _run_acceptance()

    lines = [format_fault_rows(
        rows, title="Fault tolerance: accuracy vs injected dropout rate")]
    lines.append("")
    lines.append(f"acceptance (mixed {MIXED_RATE:.0%} plan, "
                 f"{ACCEPT_CLIENTS} clients x {ACCEPT_ROUNDS} rounds): "
                 f"{acceptance['failed_client_rounds']} failed client-rounds, "
                 f"{acceptance['retried_attempts']} retried attempts, "
                 f"{acceptance['rounds_skipped']} rounds skipped")
    if "pool_matches_serial" in acceptance:
        lines.append(f"pool == serial: {acceptance['pool_matches_serial']}, "
                     f"permanent demotion: "
                     f"{acceptance['permanent_serial_demotion']}")
    publish("fault_tolerance", "\n".join(lines))
    update_bench({"fault_tolerance": {
        "accuracy_vs_dropout": rows,
        "acceptance": acceptance,
    }})

    # The sweep itself: the fault-free leg must lose no client-rounds,
    # every leg must finish its full round budget (quorum keeps rounds
    # alive), and accuracy must stay finite even at 50% dropout.
    assert rows[0]["failed_client_rounds"] == 0, rows[0]
    assert all(row["rounds"] == rows[0]["rounds"] for row in rows), rows
    assert all(np.isfinite(row["accuracy"]) for row in rows), rows
