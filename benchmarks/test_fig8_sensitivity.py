"""Figure 8 - parameter sensitivity: lambda0 and the threshold lt.

The paper sweeps lambda in {0.1, 1, 5, 10} (best ~5: meta-knowledge
matters, but excessive guidance confuses the student) and lt in
{0 .. 0.6} (best ~0.4).  At reduced scale we assert bounded, finite
behaviour and that no setting collapses - the qualitative inverted-U is
printed for inspection.
"""

from __future__ import annotations

from repro.experiments import format_table, run_sensitivity

from conftest import publish

LAMBDAS = (0.1, 1.0, 5.0, 10.0)
THRESHOLDS = (0.0, 0.2, 0.4, 0.6)


def test_fig8_sensitivity(benchmark, context):
    runs = benchmark.pedantic(
        lambda: run_sensitivity(context, lambdas=LAMBDAS, thresholds=THRESHOLDS),
        rounds=1, iterations=1,
    )
    publish("fig8_sensitivity",
            format_table(runs, title="Figure 8: sensitivity to lambda and lt"))

    recalls = [r.metrics.recall for r in runs]
    assert all(0.0 <= r <= 1.0 for r in recalls)
    # No hyper-parameter choice collapses training: the worst setting
    # stays within a band of the best.
    assert max(recalls) - min(recalls) < 0.35
