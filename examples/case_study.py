#!/usr/bin/env python
"""Case study: visualise a recovered trajectory (Figure 9).

Trains LightTR federated, recovers one held-out low-sampling-rate
trajectory, and renders the ground truth vs recovered points as an
ASCII map, plus a per-point error table along the route.

Run:  python examples/case_study.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments import SCALES, ExperimentContext, ascii_scatter, run_case_study
from repro.metrics import point_distance


def main() -> None:
    context = ExperimentContext(SCALES["small"])
    result = run_case_study(context, dataset_name="tdrive", keep_ratio=0.125,
                            methods=("LightTR",))
    truth = result["ground_truth"]
    observed = result["observed"]
    pred = result["predictions"]["LightTR"]
    flags = result["observed_flags"]

    print(ascii_scatter(
        {"truth": truth, "observed": observed, "xrecovered": pred},
        width=72, height=26,
        title="Figure 9: ground truth vs LightTR recovery (tdrive_like, keep 12.5%)",
    ))

    errors = np.linalg.norm(pred - truth, axis=1)
    missing = ~flags
    print(f"\nrecovered {int(missing.sum())} of {len(truth)} points")
    print(f"mean / median / max position error on recovered points: "
          f"{errors[missing].mean():.0f} / {np.median(errors[missing]):.0f} / "
          f"{errors[missing].max():.0f} m")

    print("\nper-point detail (first 16 steps):")
    print(f"{'step':>4}  {'observed':>8}  {'err (m)':>8}")
    for step in range(min(16, len(truth))):
        tag = "yes" if flags[step] else ""
        print(f"{step:>4}  {tag:>8}  {errors[step]:8.0f}")


if __name__ == "__main__":
    main()
