#!/usr/bin/env python
"""Compare LightTR against the paper's baselines (mini Table IV + Figure 5).

Trains all five methods federated on one synthetic dataset at one keep
ratio, prints the accuracy table, then profiles FLOPs / parameters /
epoch time to show why LightTR is the "lightweight" option.

Run:  python examples/method_comparison.py  [--keep 0.125]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.baselines import METHOD_NAMES, make_model_factory
from repro.core import ConstraintMaskBuilder, RecoveryModelConfig, TrainingConfig
from repro.core.training import LocalTrainer
from repro.data import geolife_like
from repro.federated import FederatedConfig, FederatedTrainer, build_federation
from repro.metrics import evaluate_model, profile_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--keep", type=float, default=0.125,
                        help="keep ratio (paper: 0.0625 / 0.125 / 0.25)")
    parser.add_argument("--rounds", type=int, default=6)
    args = parser.parse_args()

    world = geolife_like(num_drivers=12, trajectories_per_driver=8,
                         points_per_trajectory=33, seed=5)
    clients, global_test = build_federation(world, num_clients=4,
                                            keep_ratio=args.keep)
    config = RecoveryModelConfig(
        num_cells=world.grid.num_cells,
        num_segments=world.network.num_segments,
        hidden_size=48, cell_emb_dim=16, seg_emb_dim=16, dropout=0.0,
        bbox=world.network.bounding_box(),
    )
    mask = ConstraintMaskBuilder(world.network, radius=500.0)
    training = TrainingConfig(epochs=2, batch_size=16, lr=3e-3)

    print(f"=== accuracy (geolife_like, keep ratio {args.keep:g}) ===")
    print(f"{'method':>14}  {'recall':>7}  {'precision':>9}  {'mae':>6}  {'rmse':>6}")
    for method in METHOD_NAMES:
        factory = make_model_factory(method, config, world.network, seed=2)
        fed_config = FederatedConfig(rounds=args.rounds, local_epochs=2,
                                     training=training,
                                     use_meta=(method == "LightTR"))
        result = FederatedTrainer(factory, clients, mask, fed_config,
                                  global_test, seed=0).run()
        row = evaluate_model(result.global_model, mask, global_test)
        print(f"{method:>14}  {row.recall:7.3f}  {row.precision:9.3f}  "
              f"{row.mae:6.3f}  {row.rmse:6.3f}")

    print("\n=== efficiency (Figure 5 shape) ===")
    for method in METHOD_NAMES:
        model = make_model_factory(method, config, world.network, seed=2)()
        trainer = LocalTrainer(model, mask, training, np.random.default_rng(0))
        trainer.train_epoch(clients[0].train)  # warm up
        report = profile_model(method, model, trainer, clients[0].train,
                               seq_len=33)
        print(f"  {report}")


if __name__ == "__main__":
    main()
