#!/usr/bin/env python
"""Quickstart: recover a low-sampling-rate trajectory with LightTR.

This walks the full pipeline on a small synthetic world:

1. generate a city road network and GPS trajectories,
2. map-match the raw GPS with the HMM matcher,
3. downsample to a 25% keep ratio and encode the recovery problem,
4. train a single LightTR local model (no federation yet - see
   ``federated_recovery.py`` for the full client-server protocol),
5. recover the missing points and score them with the paper's metrics.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    ConstraintMaskBuilder,
    LTEConfig,
    LTEModel,
    LocalTrainer,
    TrainingConfig,
    TrajectoryRecovery,
)
from repro.data import TrajectoryDataset, geolife_like
from repro.mapmatch import HMMMapMatcher
from repro.metrics import evaluate_model


def main() -> None:
    # 1. A synthetic world: Beijing-like street grid + heterogeneous drivers.
    world = geolife_like(num_drivers=10, trajectories_per_driver=8,
                         points_per_trajectory=33, seed=7)
    print(f"world: {len(world.matched)} trajectories, "
          f"{world.network.num_segments} road segments, "
          f"{world.grid.num_cells} grid cells")

    # 2. The HMM map matcher (preprocessing).  The generator already gives
    #    ground-truth matched trajectories; here we show the matcher doing
    #    real work on the noisy raw GPS.
    matcher = HMMMapMatcher(world.network, sigma=10.0)
    matched = matcher.match(world.raw[0])
    truth = world.matched[0]
    agreement = np.mean([a.segment_id == b.segment_id
                         for a, b in zip(matched.points, truth.points)])
    print(f"HMM map matching segment agreement vs ground truth: {agreement:.1%}")

    # 3. Downsample (keep ratio 25% -> recover 3 of every 4 points) and encode.
    dataset = TrajectoryDataset.from_matched(world.matched, world.grid,
                                             world.network, keep_ratio=0.25)
    train, valid, test = dataset.split((0.7, 0.2, 0.1),
                                       rng=np.random.default_rng(0))
    print(f"split: {len(train)} train / {len(valid)} valid / {len(test)} test")

    # 4. Train one LightTR local model (LTE: GRU encoder + lightweight
    #    ST-operator with the constraint mask).
    rng = np.random.default_rng(1)
    config = LTEConfig(
        num_cells=dataset.num_cells,
        num_segments=dataset.num_segments,
        hidden_size=48, cell_emb_dim=16, seg_emb_dim=16, dropout=0.0,
        bbox=world.network.bounding_box(),
    )
    model = LTEModel(config, rng)
    mask = ConstraintMaskBuilder(world.network, radius=500.0)
    trainer = LocalTrainer(model, mask,
                           TrainingConfig(epochs=1, batch_size=16, lr=3e-3), rng)
    print(f"model: {model.num_parameters():,} parameters")
    for epoch in range(10):
        loss = trainer.train_epoch(train)
        if epoch % 3 == 0:
            acc = trainer.segment_accuracy(valid)
            print(f"  epoch {epoch:2d}: loss={loss:.3f} valid_acc={acc:.3f}")

    # 5. Recover the test trajectories and report the paper's metrics.
    row = evaluate_model(model, mask, test)
    print(f"test metrics: {row}")

    recovery = TrajectoryRecovery(model, mask)
    recovered = recovery.recover_dataset(test)[0]
    print(f"recovered trajectory {recovered.traj_id}: "
          f"{len(recovered.recovered_indices)} points restored, "
          f"segments {recovered.trajectory.segment_ids()[:10]}...")


if __name__ == "__main__":
    main()
