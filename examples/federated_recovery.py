#!/usr/bin/env python
"""Federated trajectory recovery: the full LightTR protocol.

Demonstrates the paper's complete system on a synthetic T-Drive-like
world: Non-IID client shards (drivers grouped by home region), cyclic
teacher pre-training (Algorithm 1), meta-knowledge enhanced local
training with the adaptive lambda (Algorithm 2), and FedAvg rounds with
client sampling (Algorithm 3).  Finishes by comparing LightTR against
a plain FedAvg run (the "w/o Meta" ablation) on the pooled test set.

Run:  python examples/federated_recovery.py [--workers N]

``--workers N`` trains each round's clients in N persistent worker
processes (the process-pool round runner); with the same seeds the
history and final model are bit-identical to the serial run.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.baselines import make_model_factory
from repro.core import ConstraintMaskBuilder, RecoveryModelConfig, TrainingConfig
from repro.data import tdrive_like
from repro.federated import FederatedConfig, FederatedTrainer, build_federation
from repro.metrics import evaluate_model

NUM_CLIENTS = 4
KEEP_RATIO = 0.125  # recover 7 of every 8 points


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="worker processes per federated round "
                             "(0 = serial, the default)")
    args = parser.parse_args()

    world = tdrive_like(num_drivers=12, trajectories_per_driver=8,
                        points_per_trajectory=33, seed=11)
    clients, global_test = build_federation(world, NUM_CLIENTS, KEEP_RATIO)
    print(f"{NUM_CLIENTS} clients with "
          f"{[c.num_train for c in clients]} training trajectories each; "
          f"{len(global_test)} pooled test trajectories"
          + (f"; {args.workers}-worker rounds" if args.workers else ""))

    config = RecoveryModelConfig(
        num_cells=world.grid.num_cells,
        num_segments=world.network.num_segments,
        hidden_size=48, cell_emb_dim=16, seg_emb_dim=16, dropout=0.0,
        bbox=world.network.bounding_box(),
    )
    mask = ConstraintMaskBuilder(world.network, radius=500.0)
    factory = make_model_factory("LightTR", config, world.network, seed=3)
    training = TrainingConfig(epochs=2, batch_size=16, lr=3e-3)

    for label, use_meta in (("LightTR (meta-knowledge)", True),
                            ("w/o Meta (plain FedAvg)", False)):
        # lt=0.2 suits this reduced scale (the paper's 0.4 assumes the
        # full 512-hidden model trained for 50 epochs per client).
        fed_config = FederatedConfig(
            rounds=6, client_fraction=1.0, local_epochs=2,
            training=training, use_meta=use_meta, lambda0=5.0, lt=0.2,
            workers=args.workers,
        )
        trainer = FederatedTrainer(factory, clients, mask, fed_config,
                                   global_test, seed=0)
        result = trainer.run()

        print(f"\n=== {label} ===")
        if result.teacher_result is not None:
            kept = sum(result.teacher_result.accepted)
            print(f"teacher: {kept}/{len(result.teacher_result.accepted)} "
                  f"client updates kept (threshold lt=0.2)")
        for record in result.history:
            lam = f" lambda={record.mean_lambda:.2f}" if use_meta else ""
            print(f"  round {record.round_index}: loss={record.mean_loss:.3f} "
                  f"global_acc={record.global_accuracy:.3f}{lam}")
        row = evaluate_model(result.global_model, mask, global_test)
        mb = result.ledger.total_bytes / 1e6
        print(f"final: {row}")
        print(f"communication: {mb:.1f} MB over {result.ledger.num_rounds} rounds")


if __name__ == "__main__":
    main()
