#!/usr/bin/env python
"""Docs-check: keep README/PERFORMANCE/ROBUSTNESS commands from rotting.

Statically verifies every checkable claim in the documentation:

* fenced ``python`` code blocks must compile;
* ``python <script>`` / ``python -m <module>`` lines in fenced ``bash``
  blocks must point at an existing script / importable module, and any
  ``--flags`` they pass must exist in that module's CLI source;
* ``pytest`` invocations must reference existing test paths and only
  markers declared in ``pytest.ini``;
* ``REPRO_*`` environment knobs (e.g. ``REPRO_SCALE``,
  ``REPRO_COMPUTE_DTYPE``) mentioned anywhere in the docs must be read
  somewhere in the Python source tree;
* relative paths mentioned in inline code or links must exist;
* dotted ``repro.*`` references in inline code must import (and, for
  ``repro.mod.attr`` forms, resolve the attribute).

Run from the repo root (or let ``tests/test_docs.py`` run it as part
of the tier-1 suite):

    PYTHONPATH=src python tools/check_docs.py

Exit status 0 means every documented command checks out; failures list
one ``file: problem`` line each.
"""

from __future__ import annotations

import importlib
import importlib.util
import os
import re
import shlex
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOC_FILES = ("README.md", os.path.join("docs", "PERFORMANCE.md"),
             os.path.join("docs", "ROBUSTNESS.md"),
             os.path.join("docs", "SERVING.md"))

_FENCE = re.compile(r"^```(\w*)\s*$")
_INLINE_CODE = re.compile(r"`([^`\n]+)`")
_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)\)")
_DOTTED = re.compile(r"^repro(\.\w+)+$")
_ENV_KNOB = re.compile(r"\bREPRO_[A-Z0-9_]+\b")

#: Directories scanned for reads of documented ``REPRO_*`` env knobs.
_SOURCE_DIRS = ("src", "tests", "benchmarks", "tools")


def _fenced_blocks(text: str) -> list[tuple[str, str]]:
    """``(language, body)`` for every fenced code block in ``text``."""
    blocks: list[tuple[str, str]] = []
    language, body = None, []
    for line in text.splitlines():
        fence = _FENCE.match(line)
        if fence is not None:
            if language is None:
                language, body = fence.group(1) or "", []
            else:
                blocks.append((language, "\n".join(body)))
                language = None
        elif language is not None:
            body.append(line)
    return blocks


def _exists(path: str) -> bool:
    return os.path.exists(os.path.join(REPO_ROOT, path))


def _importable(module: str) -> bool:
    try:
        importlib.import_module(module)
        return True
    except Exception:
        return False


def _declared_markers() -> set[str]:
    markers = set()
    try:
        with open(os.path.join(REPO_ROOT, "pytest.ini")) as handle:
            in_markers = False
            for line in handle:
                if line.strip().startswith("markers"):
                    in_markers = True
                    continue
                if in_markers:
                    if line[:1].isspace() and line.strip():
                        markers.add(line.strip().split(":")[0])
                    else:
                        in_markers = False
    except OSError:
        pass
    return markers


_ENV_KNOBS_IN_SOURCE: set[str] | None = None


def _env_knobs_in_source() -> set[str]:
    """Every ``REPRO_*`` name appearing in the Python source tree."""
    global _ENV_KNOBS_IN_SOURCE
    if _ENV_KNOBS_IN_SOURCE is None:
        knobs: set[str] = set()
        for source_dir in _SOURCE_DIRS:
            root = os.path.join(REPO_ROOT, source_dir)
            for dirpath, _dirnames, filenames in os.walk(root):
                for filename in filenames:
                    if not filename.endswith(".py"):
                        continue
                    path = os.path.join(dirpath, filename)
                    with open(path, encoding="utf-8") as handle:
                        knobs.update(_ENV_KNOB.findall(handle.read()))
        _ENV_KNOBS_IN_SOURCE = knobs
    return _ENV_KNOBS_IN_SOURCE


def _check_env_knobs(doc: str, text: str, errors: list[str]) -> None:
    """Documented ``REPRO_*`` env knobs must be read by the source."""
    known = _env_knobs_in_source()
    for knob in sorted(set(_ENV_KNOB.findall(text))):
        if knob not in known:
            errors.append(
                f"{doc}: env knob {knob!r} is not read anywhere in "
                f"{'/'.join(_SOURCE_DIRS)}")


def _cli_flags_exist(module: str, flags: list[str]) -> list[str]:
    """Flags from ``flags`` that the module's CLI source never mentions."""
    spec = importlib.util.find_spec(module)
    if spec is None or not spec.origin or not os.path.exists(spec.origin):
        return []
    origin = spec.origin
    if os.path.basename(origin) == "__init__.py":
        main = os.path.join(os.path.dirname(origin), "__main__.py")
        if os.path.exists(main):
            origin = main
    with open(origin, encoding="utf-8") as handle:
        source = handle.read()
    return [flag for flag in flags if flag not in source]


def _check_bash_line(doc: str, line: str, errors: list[str]) -> None:
    line = line.strip()
    if not line or line.startswith("#"):
        return
    try:
        tokens = shlex.split(line)
    except ValueError:
        errors.append(f"{doc}: unparseable command {line!r}")
        return
    # Strip leading VAR=value environment assignments.
    while tokens and "=" in tokens[0] and not tokens[0].startswith("-"):
        tokens = tokens[1:]
    if not tokens:
        return
    program = tokens[0]
    if program == "export":
        return
    if program in ("python", "python3"):
        if len(tokens) >= 3 and tokens[1] == "-m":
            module = tokens[2]
            if module == "pytest":
                _check_pytest(doc, tokens[3:], errors)
                return
            if not _importable(module):
                errors.append(f"{doc}: module {module!r} is not importable")
                return
            flags = [t for t in tokens[3:] if t.startswith("--")]
            for missing in _cli_flags_exist(module, flags):
                errors.append(
                    f"{doc}: flag {missing!r} not found in {module}'s CLI")
        elif len(tokens) >= 2 and not tokens[1].startswith("-"):
            if not _exists(tokens[1]):
                errors.append(f"{doc}: script {tokens[1]!r} does not exist")
    elif program == "pytest":
        _check_pytest(doc, tokens[1:], errors)
    elif program == "pip":
        if "-e" in tokens and not _exists("setup.py"):
            errors.append(f"{doc}: pip -e target has no setup.py")


def _check_pytest(doc: str, args: list[str], errors: list[str]) -> None:
    markers = _declared_markers()
    expect_marker = False
    for token in args:
        if expect_marker:
            for marker in re.findall(r"\w+", token):
                if marker not in markers and marker not in ("not", "and", "or"):
                    errors.append(f"{doc}: pytest marker {marker!r} undeclared")
            expect_marker = False
        elif token == "-m":
            expect_marker = True
        elif not token.startswith("-") and ("/" in token or token.endswith(".py")):
            if not _exists(token.split("::")[0]):
                errors.append(f"{doc}: pytest path {token!r} does not exist")


def _check_inline(doc: str, text: str, errors: list[str]) -> None:
    for match in _INLINE_CODE.finditer(text):
        code = match.group(1).strip()
        if _DOTTED.match(code):
            parts = code.split(".")
            if _importable(code):
                continue
            module, attr = ".".join(parts[:-1]), parts[-1]
            if not (_importable(module)
                    and hasattr(importlib.import_module(module), attr)):
                errors.append(f"{doc}: reference {code!r} does not resolve")
        elif ("/" in code or code.endswith((".py", ".md", ".json", ".ini"))) \
                and " " not in code and not code.startswith("-"):
            if re.fullmatch(r"[\w./-]+", code) and not _exists(code):
                errors.append(f"{doc}: path {code!r} does not exist")
    for match in _MD_LINK.finditer(text):
        target = match.group(1)
        if "://" not in target and not _exists(target):
            errors.append(f"{doc}: link target {target!r} does not exist")


def check_docs(doc_files=DOC_FILES) -> list[str]:
    """All problems found across ``doc_files`` (empty list = clean)."""
    errors: list[str] = []
    for doc in doc_files:
        path = os.path.join(REPO_ROOT, doc)
        if not os.path.exists(path):
            errors.append(f"{doc}: documentation file missing")
            continue
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        for language, body in _fenced_blocks(text):
            if language == "python":
                try:
                    compile(body, f"<{doc} python block>", "exec")
                except SyntaxError as exc:
                    errors.append(f"{doc}: python block does not compile: {exc}")
            elif language in ("bash", "sh", "shell", ""):
                for line in body.splitlines():
                    _check_bash_line(doc, line, errors)
        # Strip fences so inline checks do not re-scan block bodies.
        stripped = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        _check_inline(doc, stripped, errors)
        # Env knobs are checked in the full text: they appear both
        # inline (`REPRO_COMPUTE_DTYPE=float32` CI leg) and in bash
        # blocks (`REPRO_SCALE=small pytest ...`).
        _check_env_knobs(doc, text, errors)
    return errors


def main() -> int:
    errors = check_docs()
    if errors:
        print(f"docs-check: {len(errors)} problem(s)")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"docs-check: OK ({', '.join(DOC_FILES)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
