#!/usr/bin/env python
"""Backend-seam lint: kernel modules must not call ``np.*`` directly.

The pluggable array backend (``src/repro/nn/backend.py``) only works if
every kernel-side array *operation* dispatches through its ``ops``
namespace — a direct ``np.exp(...)`` in a kernel module silently
bypasses whatever backend the user selected and rots the seam.  This
lint tokenizes every kernel module (comments and string literals are
skipped, so docstrings may freely mention ``np.clip``) and flags any
``np.<name>`` attribute access whose first attribute component is not
on the allowlist of *edge* functions: array construction, dtype
constants, and RNG streams, which intentionally stay on NumPy so every
backend sees identical inputs.

ndarray *method* calls (``x.sum(...)``, ``x @ w``, fancy indexing)
never appear as ``np.`` attribute accesses and already dispatch through
the array object, so they are out of scope by construction.

Run from the repo root (or let ``tests/test_backend_lint.py`` run it as
part of the tier-1 suite):

    python tools/check_backend.py

Exit status 0 means the seam is intact; failures list one
``file:line: np.<name>`` entry each.
"""

from __future__ import annotations

import io
import os
import sys
import tokenize

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The kernel-side modules the backend seam covers (the tentpole list
#: from the PR-6 issue: every nn kernel module plus the serving engine,
#: decode programs, and the constraint-mask kernels).
KERNEL_MODULES = (
    "src/repro/nn/tensor.py",
    "src/repro/nn/functional.py",
    "src/repro/nn/recurrent.py",
    "src/repro/nn/attention.py",
    "src/repro/nn/layers.py",
    "src/repro/nn/loss.py",
    "src/repro/nn/optim.py",
    "src/repro/nn/flatten.py",
    "src/repro/nn/init.py",
    "src/repro/core/mask.py",
    "src/repro/core/st_block.py",
    "src/repro/serving/engine.py",
    "src/repro/serving/programs.py",
    "src/repro/serving/scheduler.py",
)

#: ``np.<name>`` accesses that stay direct: array construction and
#: layout edges, dtype constants/queries, RNG streams, and formatting.
#: Everything else is array math and must go through ``backend.ops``.
ALLOWED = frozenset({
    # construction / conversion
    "asarray", "array", "ascontiguousarray", "frombuffer", "fromiter",
    "empty", "zeros", "ones", "full",
    "empty_like", "zeros_like", "ones_like", "full_like",
    "arange", "linspace", "resize",
    # dtype constants and queries
    "dtype", "ndarray", "generic", "isscalar", "isdtype",
    "float64", "float32", "float16", "int64", "int32", "int16", "int8",
    "uint8", "bool_", "intp", "finfo", "iinfo", "promote_types",
    "result_type", "can_cast",
    # shape bookkeeping (pure metadata, no array math)
    "prod", "shape", "ndim", "size",
    # RNG streams stay on NumPy so every backend sees identical data
    "random",
    # formatting / debugging edges
    "array2string", "set_printoptions", "errstate", "testing",
})


def check_module(path: str) -> list[str]:
    """``file:line: np.<name>`` for every disallowed direct call."""
    problems: list[str] = []
    with open(os.path.join(REPO_ROOT, path), encoding="utf-8") as handle:
        source = handle.read()
    tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    for i, token in enumerate(tokens):
        if token.type != tokenize.NAME or token.string != "np":
            continue
        # Only attribute accesses: "np" "." "<name>".
        if i + 2 >= len(tokens):
            continue
        dot, attr = tokens[i + 1], tokens[i + 2]
        if dot.type != tokenize.OP or dot.string != ".":
            continue
        if attr.type != tokenize.NAME:
            continue
        # Skip "x.np" style accesses (np as an attribute, not the module).
        if i > 0 and tokens[i - 1].type == tokenize.OP \
                and tokens[i - 1].string == ".":
            continue
        if attr.string not in ALLOWED:
            problems.append(
                f"{path}:{token.start[0]}: np.{attr.string}")
    return problems


def check_backend_seam(modules=KERNEL_MODULES) -> list[str]:
    """All seam violations across ``modules`` (empty list = clean)."""
    problems: list[str] = []
    for path in modules:
        if not os.path.exists(os.path.join(REPO_ROOT, path)):
            problems.append(f"{path}: kernel module missing")
            continue
        problems.extend(check_module(path))
    return problems


def main() -> int:
    problems = check_backend_seam()
    if problems:
        print(f"backend-seam check: {len(problems)} direct np call(s)")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"backend-seam check: OK ({len(KERNEL_MODULES)} kernel modules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
